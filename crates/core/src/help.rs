//! Algorithm H — the adaptive HELP-interval controller (paper Figure 2).
//!
//! ```text
//! Whenever a task arrives do {
//!   If resource usage would exceed a threshold level {
//!     If ((T_current - T_sent) > HELP_interval) { send HELP; set_timer; }
//!   }
//! }
//! Timeout do {
//!   If ((HELP_interval + HELP_interval * alpha) < Upper_limit)
//!     HELP_interval += HELP_interval * alpha;
//! }
//! Whenever a PLEDGE message arrives do {
//!   If the corresponding timer is not expired reset_timer;
//!   Update corresponding PLEDGE list;
//!   If a node is found for migration {
//!     If ((HELP_interval - HELP_interval * beta) > 0)
//!       HELP_interval -= HELP_interval * beta;
//!   }
//! }
//! ```
//!
//! The controller is a pure state machine: the owning protocol feeds it
//! arrivals, timeouts and pledge outcomes and reads back whether to flood a
//! HELP. Timers are correlated by generation number so that a stale timeout
//! (one whose timer was already reset by a PLEDGE) is ignored.

use crate::config::ProtocolConfig;
use realtor_simcore::{SimDuration, SimTime};

/// Interval-adaptation policy variants used by the different protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelpMode {
    /// Full Algorithm H: multiplicative increase on timeout (bounded by
    /// `Upper_limit`), multiplicative decrease on success. REALTOR and the
    /// adaptive-PULL baseline use this.
    Adaptive,
    /// The pure-PULL baseline: no interval gating at all — every qualifying
    /// arrival floods ("generates HELP messages unlimitedly").
    Unlimited,
}

/// The Algorithm H controller.
///
/// ```
/// use realtor_core::help::{HelpController, HelpDecision, HelpMode};
/// use realtor_core::ProtocolConfig;
/// use realtor_simcore::SimTime;
///
/// let mut h = HelpController::new(&ProtocolConfig::paper(), HelpMode::Adaptive);
/// // A task arrival that overflows the queue (occupancy preview 1.0)
/// // opens an urgent HELP round:
/// let HelpDecision::SendHelp { timer_gen, .. } =
///     h.on_task_arrival(SimTime::ZERO, 1.0) else { panic!() };
/// // Nobody pledges in time: the timeout backs the interval off by alpha.
/// assert!(h.on_timeout(timer_gen));
/// assert!(h.interval() > ProtocolConfig::paper().initial_help_interval);
/// ```
#[derive(Debug, Clone)]
pub struct HelpController {
    mode: HelpMode,
    threshold: f64,
    interval: SimDuration,
    initial_interval: SimDuration,
    upper_limit: SimDuration,
    alpha: f64,
    beta: f64,
    pledge_wait: SimDuration,
    last_sent: Option<SimTime>,
    /// Generation of the currently armed timer; `None` when no timer armed.
    armed: Option<u64>,
    /// Whether the open round was triggered by an actual queue overflow (a
    /// task that needs migration) rather than a precautionary threshold
    /// excursion. Only urgent rounds can earn the shrink reward: the paper's
    /// "a node is found for migration" refers to a real migration demand,
    /// and under overload "HELP_interval is kept at maximum due to the
    /// repeated failure of finding available resources".
    round_urgent: bool,
    next_gen: u64,
    helps_sent: u64,
    timeouts: u64,
    successes: u64,
}

/// What the controller asks its owner to do after a task arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelpDecision {
    /// Flood a HELP now and arm a pledge-wait timer with this generation.
    SendHelp {
        /// Timer correlation token to hand back via [`HelpController::on_timeout`].
        timer_gen: u64,
        /// Delay after which the timeout fires unless a pledge resets it.
        wait: SimDuration,
    },
    /// Do nothing (below threshold, or interval not yet elapsed).
    Hold,
}

impl HelpController {
    /// Build from a protocol configuration.
    pub fn new(cfg: &ProtocolConfig, mode: HelpMode) -> Self {
        HelpController {
            mode,
            threshold: cfg.help_threshold,
            interval: cfg.initial_help_interval,
            initial_interval: cfg.initial_help_interval,
            upper_limit: cfg.upper_limit,
            alpha: cfg.alpha,
            beta: cfg.beta,
            pledge_wait: cfg.pledge_wait,
            last_sent: None,
            armed: None,
            round_urgent: false,
            next_gen: 0,
            helps_sent: 0,
            timeouts: 0,
            successes: 0,
        }
    }

    /// The current `HELP_interval`.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The occupancy threshold above which arrivals solicit help.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Lifetime counts: (HELPs sent, timeouts, successes).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.helps_sent, self.timeouts, self.successes)
    }

    /// A task arrived; `queue_frac` is occupancy *including* the new task
    /// ("If resource usage would exceed a threshold level").
    pub fn on_task_arrival(&mut self, now: SimTime, queue_frac: f64) -> HelpDecision {
        if queue_frac <= self.threshold {
            return HelpDecision::Hold;
        }
        let due = match self.mode {
            HelpMode::Unlimited => true,
            HelpMode::Adaptive => match self.last_sent {
                None => true,
                Some(sent) => now.since(sent) > self.interval,
            },
        };
        if !due {
            return HelpDecision::Hold;
        }
        self.last_sent = Some(now);
        self.helps_sent += 1;
        let gen = self.next_gen;
        self.next_gen += 1;
        self.armed = Some(gen);
        // An arrival that fills the queue completely cannot be admitted
        // locally: this round solicits for a concrete migration.
        self.round_urgent = queue_frac >= 1.0 - 1e-9;
        HelpDecision::SendHelp {
            timer_gen: gen,
            wait: self.pledge_wait,
        }
    }

    /// A pledge-wait timer fired. Returns `true` when the timeout was live
    /// (not already reset by a pledge) and the interval was penalized.
    pub fn on_timeout(&mut self, timer_gen: u64) -> bool {
        if self.armed != Some(timer_gen) {
            return false; // stale timer: a PLEDGE already reset it
        }
        self.armed = None;
        self.timeouts += 1;
        // Paper: grow only while the grown value stays under Upper_limit.
        self.grow_interval();
        true
    }

    /// A PLEDGE arrived. `found_candidate` is the paper's "a node is found
    /// for migration": the pledge made a viable destination known.
    ///
    /// The reward applies at most once per outstanding HELP round: the paper
    /// guards the whole handler with "if the corresponding timer is not
    /// expired reset_timer", so pledges arriving outside a round (duplicate
    /// answers, REALTOR's unsolicited updates) must not keep shrinking the
    /// interval — without this guard the ~N pledges answering one HELP
    /// collapse the interval to zero and adaptive pull degenerates into
    /// unlimited pull.
    pub fn on_pledge(&mut self, found_candidate: bool) {
        if self.armed.take().is_none() {
            return; // no outstanding HELP round
        }
        if found_candidate && self.round_urgent {
            self.successes += 1;
            if self.mode == HelpMode::Adaptive {
                let shrunk = self.interval.saturating_sub(self.interval.mul_f64(self.beta));
                // "If ((HELP_interval - HELP_interval*beta) > 0)"
                if !shrunk.is_zero() {
                    self.interval = shrunk;
                }
            }
        } else {
            // The round closed without locating a migration destination — a
            // precautionary solicit, or a pledge too small to host the task.
            // Count it as a failure exactly like a timeout, so that
            // discovery activity backs off whenever it is not paying for
            // itself ("the idea is to avoid unnecessary discovery activity"
            // — §4; see DESIGN.md §5 for the interpretation).
            self.grow_interval();
            self.timeouts += 1;
        }
        self.round_urgent = false;
    }

    fn grow_interval(&mut self) {
        if self.mode == HelpMode::Adaptive {
            let grown = self.interval + self.interval.mul_f64(self.alpha);
            if grown < self.upper_limit {
                self.interval = grown;
            } else {
                self.interval = self.upper_limit;
            }
        }
    }

    /// Reset the interval to its initial value (used when a node recovers
    /// from an attack and rejoins).
    pub fn reset(&mut self) {
        self.interval = self.initial_interval;
        self.last_sent = None;
        self.armed = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::paper()
    }

    fn arrive(h: &mut HelpController, t: f64, frac: f64) -> HelpDecision {
        h.on_task_arrival(SimTime::from_secs_f64(t), frac)
    }

    #[test]
    fn below_threshold_never_sends() {
        let mut h = HelpController::new(&cfg(), HelpMode::Adaptive);
        for i in 0..10 {
            assert_eq!(arrive(&mut h, i as f64, 0.5), HelpDecision::Hold);
        }
        assert_eq!(h.counters().0, 0);
    }

    #[test]
    fn first_qualifying_arrival_sends() {
        let mut h = HelpController::new(&cfg(), HelpMode::Adaptive);
        match arrive(&mut h, 0.0, 0.95) {
            HelpDecision::SendHelp { wait, .. } => assert_eq!(wait, SimDuration::from_secs(1)),
            other => panic!("expected SendHelp, got {other:?}"),
        }
    }

    #[test]
    fn interval_gates_resends() {
        let mut h = HelpController::new(&cfg(), HelpMode::Adaptive);
        assert!(matches!(arrive(&mut h, 0.0, 0.95), HelpDecision::SendHelp { .. }));
        // interval is 1s: arrivals within 1s hold
        assert_eq!(arrive(&mut h, 0.5, 0.95), HelpDecision::Hold);
        assert_eq!(arrive(&mut h, 1.0, 0.95), HelpDecision::Hold); // strictly greater required
        assert!(matches!(arrive(&mut h, 1.01, 0.95), HelpDecision::SendHelp { .. }));
    }

    #[test]
    fn timeout_grows_interval_to_upper_limit() {
        let mut h = HelpController::new(&cfg(), HelpMode::Adaptive);
        let mut t = 0.0;
        // Repeated send/timeout cycles: interval 1 * 1.5^k, clamped at 100.
        for _ in 0..30 {
            if let HelpDecision::SendHelp { timer_gen, .. } = arrive(&mut h, t, 0.95) {
                assert!(h.on_timeout(timer_gen));
            }
            t += 200.0; // always past the interval
        }
        assert_eq!(h.interval(), SimDuration::from_secs(100));
    }

    #[test]
    fn success_shrinks_interval_once_per_round() {
        let mut h = HelpController::new(&cfg(), HelpMode::Adaptive);
        // grow a bit first
        if let HelpDecision::SendHelp { timer_gen, .. } = arrive(&mut h, 0.0, 0.95) {
            h.on_timeout(timer_gen);
        }
        let grown = h.interval();
        assert_eq!(grown, SimDuration::from_secs_f64(1.5));
        // No round outstanding: a pledge must not shrink.
        h.on_pledge(true);
        assert_eq!(h.interval(), grown);
        // Open a new URGENT round (overflow); the first useful pledge shrinks...
        assert!(matches!(arrive(&mut h, 10.0, 1.0), HelpDecision::SendHelp { .. }));
        h.on_pledge(true);
        assert_eq!(h.interval(), SimDuration::from_secs_f64(0.75));
        // ...and later pledges of the same round do not shrink again.
        h.on_pledge(true);
        h.on_pledge(true);
        assert_eq!(h.interval(), SimDuration::from_secs_f64(0.75));
    }

    #[test]
    fn failure_pledges_close_round_with_penalty() {
        let mut h = HelpController::new(&cfg(), HelpMode::Adaptive);
        let HelpDecision::SendHelp { timer_gen, .. } = arrive(&mut h, 0.0, 1.0) else {
            panic!()
        };
        // A pledge that cannot host the pending task fails the round: the
        // interval backs off exactly as on timeout.
        h.on_pledge(false);
        assert_eq!(h.interval(), SimDuration::from_secs_f64(1.5));
        // The round is closed: the timeout is now stale and adds nothing.
        assert!(!h.on_timeout(timer_gen));
        assert_eq!(h.interval(), SimDuration::from_secs_f64(1.5));
    }

    #[test]
    fn precautionary_round_backs_off_on_any_pledge() {
        let mut h = HelpController::new(&cfg(), HelpMode::Adaptive);
        // Non-urgent round (queue above threshold but task still fits).
        assert!(matches!(arrive(&mut h, 0.0, 0.95), HelpDecision::SendHelp { .. }));
        h.on_pledge(true); // viable pledge, but no migration was pending
        assert_eq!(h.interval(), SimDuration::from_secs_f64(1.5));
    }

    #[test]
    fn interval_never_reaches_zero() {
        let mut h = HelpController::new(&cfg(), HelpMode::Adaptive);
        let mut t = 0.0;
        for _ in 0..10_000 {
            if matches!(arrive(&mut h, t, 1.0), HelpDecision::SendHelp { .. }) {
                h.on_pledge(true); // shrink once per round
            }
            t += 1_000.0; // always past the (shrinking) interval
        }
        assert!(!h.interval().is_zero());
    }

    #[test]
    fn stale_timeout_ignored() {
        let mut h = HelpController::new(&cfg(), HelpMode::Adaptive);
        let HelpDecision::SendHelp { timer_gen, .. } = arrive(&mut h, 0.0, 1.0) else {
            panic!()
        };
        h.on_pledge(true); // urgent round rewarded; timer reset
        let after_reward = h.interval();
        assert!(!h.on_timeout(timer_gen), "reset timer must not penalize");
        assert_eq!(h.interval(), after_reward);
        assert_eq!(h.counters().1, 0, "no timeout was counted");
    }

    #[test]
    fn unlimited_mode_sends_every_arrival() {
        let mut h = HelpController::new(&cfg(), HelpMode::Unlimited);
        for i in 0..50 {
            assert!(matches!(
                arrive(&mut h, i as f64 * 0.001, 0.95),
                HelpDecision::SendHelp { .. }
            ));
        }
        assert_eq!(h.counters().0, 50);
    }

    #[test]
    fn unlimited_mode_never_adapts() {
        let mut h = HelpController::new(&cfg(), HelpMode::Unlimited);
        let HelpDecision::SendHelp { timer_gen, .. } = arrive(&mut h, 0.0, 0.95) else {
            panic!()
        };
        h.on_timeout(timer_gen);
        assert_eq!(h.interval(), SimDuration::from_secs(1));
        h.on_pledge(true);
        assert_eq!(h.interval(), SimDuration::from_secs(1));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = HelpController::new(&cfg(), HelpMode::Adaptive);
        if let HelpDecision::SendHelp { timer_gen, .. } = arrive(&mut h, 0.0, 0.95) {
            h.on_timeout(timer_gen);
        }
        assert_ne!(h.interval(), SimDuration::from_secs(1));
        h.reset();
        assert_eq!(h.interval(), SimDuration::from_secs(1));
        // can immediately send again
        assert!(matches!(arrive(&mut h, 0.1, 0.95), HelpDecision::SendHelp { .. }));
    }
}
