//! # realtor-core — the REALTOR resource-discovery protocol
//!
//! Faithful implementation of the protocol proposed in *"Dynamic Resource
//! Discovery for Applications Survivability in Distributed Real-Time
//! Systems"* (Choi, Rho, Bettati — IPDPS 2003), together with the four
//! baselines the paper compares against:
//!
//! | label | kind | module |
//! |---|---|---|
//! | `Pull-.9`     | pure PULL      | [`baselines::pure_pull`] |
//! | `Push-1`      | pure PUSH      | [`baselines::pure_push`] |
//! | `Push-.9`     | adaptive PUSH  | [`baselines::adaptive_push`] |
//! | `Pull-100`    | adaptive PULL  | [`baselines::adaptive_pull`] |
//! | `REALTOR-100` | combined       | [`realtor`] |
//!
//! Building blocks:
//! * [`help`] — Algorithm H, the adaptive HELP-interval controller,
//! * [`pledge`] — Algorithm P and the organizer's availability store,
//! * [`community`] — soft-state community membership,
//! * [`failure`] — timeout-based failure detection over protocol traffic,
//! * [`message`] — the HELP/PLEDGE/ADVERT wire types,
//! * [`protocol`] — the event-driven [`DiscoveryProtocol`] trait that lets
//!   the same protocol code run under the discrete-event simulator
//!   (`realtor-sim`) and the thread-per-host runtime (`realtor-agile`),
//! * [`factory`] — [`ProtocolKind`] selection,
//! * [`resources`] — the multi-resource extension (paper footnote 3),
//! * [`inter_community`] — the inter-neighbor-group extension (paper §7).

#![warn(missing_docs)]

pub mod baselines;
pub mod community;
pub mod config;
pub mod factory;
pub mod failure;
pub mod help;
pub mod inter_community;
pub mod message;
pub mod pledge;
pub mod protocol;
pub mod realtor;
pub mod resources;

pub use config::{CandidatePolicy, ProtocolConfig};
pub use factory::ProtocolKind;
pub use failure::{FailureDetector, FailureDetectorConfig, PeerState};
pub use message::{Advert, Help, Message, Pledge};
pub use protocol::{Action, Actions, DiscoveryProtocol, LocalView, TimerToken};
pub use realtor::Realtor;
