//! Adaptive PUSH ("Push-.9"): *"each host disseminates its own resource
//! availability information to its neighbors whenever the resource usage
//! changes across a threshold level"* — event-driven dissemination, no
//! solicitation.
//!
//! Because silence means "nothing changed", a node that has never advertised
//! is still on its initial side of the threshold. The store is therefore
//! seeded optimistically with every peer at full capacity (all queues start
//! empty); the first threshold crossing corrects the record.

use crate::config::ProtocolConfig;
use crate::message::{Advert, Message};
use crate::pledge::{AvailabilityStore, PledgePolicy};
use crate::protocol::{Actions, DiscoveryProtocol, Introspection, LocalView, TimerToken};
use realtor_net::NodeId;
use realtor_simcore::SimTime;

/// The adaptive-push baseline instance for one node.
#[derive(Debug)]
pub struct AdaptivePush {
    me: NodeId,
    cfg: ProtocolConfig,
    policy: PledgePolicy,
    store: AvailabilityStore,
    peers: Vec<NodeId>,
    peer_capacity_secs: f64,
    last_need_secs: f64,
}

impl AdaptivePush {
    /// Create an adaptive-push instance for `me`.
    ///
    /// `peers` is the overlay scope (everyone who would receive a flood);
    /// `peer_capacity_secs` seeds the optimistic initial record for each.
    pub fn new(me: NodeId, cfg: ProtocolConfig, peers: Vec<NodeId>, peer_capacity_secs: f64) -> Self {
        cfg.validate();
        AdaptivePush {
            me,
            policy: PledgePolicy::new(&cfg, 0.0),
            store: AvailabilityStore::new(),
            peers,
            peer_capacity_secs,
            last_need_secs: 0.0,
            cfg,
        }
    }

    /// Immutable view of the advertisement cache.
    pub fn store(&self) -> &AvailabilityStore {
        &self.store
    }

    fn seed_store(&mut self, now: SimTime) {
        for &p in &self.peers {
            if p != self.me {
                self.store.record(p, self.peer_capacity_secs, now);
            }
        }
    }
}

impl DiscoveryProtocol for AdaptivePush {
    fn name(&self) -> &'static str {
        "Push-.9"
    }

    fn node(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self, now: SimTime, _local: LocalView, _out: &mut Actions) {
        self.seed_store(now);
    }

    fn on_task_arrival(&mut self, _now: SimTime, _local: LocalView, _out: &mut Actions) {
        // Never solicits; dissemination happens on usage change.
    }

    fn on_usage_change(&mut self, now: SimTime, local: LocalView, out: &mut Actions) {
        if self.policy.observe(local.queue_frac).is_some() {
            out.flood(Message::Advert(Advert {
                advertiser: self.me,
                headroom_secs: local.headroom_secs,
                sent_at: now,
            }));
        }
    }

    fn on_message(
        &mut self,
        now: SimTime,
        _from: NodeId,
        msg: &Message,
        _local: LocalView,
        _out: &mut Actions,
    ) {
        if let Message::Advert(a) = msg {
            if a.advertiser != self.me {
                self.store
                    .record_report(a.advertiser, a.headroom_secs, now, a.sent_at);
            }
        }
    }

    fn on_timer(&mut self, _now: SimTime, _token: TimerToken, _local: LocalView, _out: &mut Actions) {
        // Adaptive push arms no timers.
    }

    fn pick_candidate(&mut self, now: SimTime, need_secs: f64) -> Option<NodeId> {
        self.last_need_secs = need_secs;
        self.store.pick(
            now,
            need_secs,
            self.cfg.info_ttl,
            self.me,
            self.cfg.candidate_policy,
        )
    }

    fn on_migration_result(&mut self, now: SimTime, dest: NodeId, admitted: bool) {
        if admitted {
            if let Some(r) = self.store.get(dest) {
                self.store
                    .record(dest, (r.headroom_secs - self.last_need_secs).max(0.0), now);
            }
        } else {
            self.store.record(dest, 0.0, now);
        }
    }

    fn introspect(&self, _now: SimTime) -> Introspection {
        Introspection {
            help_interval_secs: None,
            known_candidates: self.store.len(),
            memberships: 0,
            lifetime_joins: 0,
        }
    }

    fn on_reset(&mut self, now: SimTime) {
        self.policy = PledgePolicy::new(&self.cfg, 0.0);
        self.store = AvailabilityStore::new();
        self.seed_store(now);
        self.last_need_secs = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Action;

    fn view(headroom: f64) -> LocalView {
        LocalView::new(headroom, 100.0)
    }

    fn at(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn make(me: NodeId) -> AdaptivePush {
        AdaptivePush::new(me, ProtocolConfig::paper(), (0..5).collect(), 100.0)
    }

    #[test]
    fn crossing_floods_advert_once() {
        let mut p = make(0);
        let mut out = Actions::new();
        p.on_usage_change(at(1.0), view(50.0), &mut out);
        assert!(out.is_empty(), "no crossing yet");
        p.on_usage_change(at(2.0), view(5.0), &mut out); // 95%: crossed busy
        assert_eq!(out.len(), 1);
        assert!(matches!(out.as_slice()[0], Action::Flood(Message::Advert(_))));
        let mut out = Actions::new();
        p.on_usage_change(at(3.0), view(2.0), &mut out); // still busy
        assert!(out.is_empty());
        p.on_usage_change(at(4.0), view(60.0), &mut out); // crossed free
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn store_starts_optimistic() {
        let mut p = make(0);
        p.on_start(at(0.0), view(100.0), &mut Actions::new());
        // never heard from anyone, but assumes peers are empty
        assert_eq!(p.pick_candidate(at(0.0), 50.0), Some(1));
    }

    #[test]
    fn adverts_overwrite_optimism() {
        let mut p = make(0);
        p.on_start(at(0.0), view(100.0), &mut Actions::new());
        for n in 1..5 {
            let m = Message::Advert(Advert {
                advertiser: n,
                headroom_secs: 3.0,
                sent_at: at(1.0),
            });
            p.on_message(at(1.0), n, &m, view(100.0), &mut Actions::new());
        }
        assert_eq!(p.pick_candidate(at(2.0), 50.0), None);
        assert_eq!(p.pick_candidate(at(2.0), 2.0), Some(1));
    }

    #[test]
    fn no_timers_no_solicitations() {
        let mut p = make(0);
        let mut out = Actions::new();
        p.on_start(at(0.0), view(100.0), &mut out);
        p.on_task_arrival(at(0.5), view(1.0), &mut out);
        p.on_timer(at(1.0), TimerToken(0), view(1.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn reset_reseeds_optimistically() {
        let mut p = make(0);
        p.on_start(at(0.0), view(100.0), &mut Actions::new());
        let m = Message::Advert(Advert {
            advertiser: 1,
            headroom_secs: 0.0,
            sent_at: at(1.0),
        });
        p.on_message(at(1.0), 1, &m, view(100.0), &mut Actions::new());
        p.on_reset(at(2.0));
        assert_eq!(p.pick_candidate(at(2.0), 50.0), Some(1));
    }
}
