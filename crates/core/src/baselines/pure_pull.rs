//! Pure PULL ("Pull-.9"): *"each host solicits PLEDGE from its community
//! members whenever 1) a task arrives and 2) the resource usage level is
//! beyond a threshold level. […] this scheme generates HELP messages
//! unlimitedly (without Upper_limit in Algorithm H) as long as resource
//! usage is above the threshold level."*
//!
//! Members answer each HELP with exactly one PLEDGE (the first clause of
//! Algorithm P); there are no unsolicited updates, which is what makes
//! pull-based information go stale — the effect behind the paper's Figure 8
//! discussion.

use crate::config::ProtocolConfig;
use crate::help::{HelpController, HelpDecision, HelpMode};
use crate::message::{Help, Message, Pledge};
use crate::pledge::{AvailabilityStore, PledgePolicy};
use crate::protocol::{Actions, DiscoveryProtocol, Introspection, LocalView, TimerToken};
use realtor_net::NodeId;
use realtor_simcore::SimTime;

/// The pure-pull baseline instance for one node.
#[derive(Debug)]
pub struct PurePull {
    me: NodeId,
    cfg: ProtocolConfig,
    help: HelpController,
    policy: PledgePolicy,
    store: AvailabilityStore,
    last_need_secs: f64,
    helped_count: u32,
}

impl PurePull {
    /// Create a pure-pull instance for `me`.
    pub fn new(me: NodeId, cfg: ProtocolConfig) -> Self {
        cfg.validate();
        PurePull {
            me,
            help: HelpController::new(&cfg, HelpMode::Unlimited),
            policy: PledgePolicy::new(&cfg, 0.0),
            store: AvailabilityStore::new(),
            last_need_secs: 0.0,
            helped_count: 0,
            cfg,
        }
    }

    /// Immutable view of the pledge list.
    pub fn store(&self) -> &AvailabilityStore {
        &self.store
    }

    fn make_pledge(&self, now: SimTime, local: LocalView) -> Pledge {
        Pledge {
            pledger: self.me,
            headroom_secs: local.headroom_secs,
            community_count: 0, // pure pull keeps no community state
            grant_probability: (local.headroom_secs / local.capacity_secs).clamp(0.0, 1.0),
            sent_at: now,
        }
    }
}

impl DiscoveryProtocol for PurePull {
    fn name(&self) -> &'static str {
        "Pull-.9"
    }

    fn node(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self, _now: SimTime, _local: LocalView, _out: &mut Actions) {}

    fn on_task_arrival(&mut self, now: SimTime, local: LocalView, out: &mut Actions) {
        if let HelpDecision::SendHelp { .. } = self.help.on_task_arrival(now, local.queue_frac) {
            self.helped_count += 1;
            out.flood(Message::Help(Help {
                organizer: self.me,
                member_count: self.helped_count,
                urgency: local.queue_frac,
                relay_ttl: 0,
            }));
            // Unlimited mode adapts nothing on timeout, so no timer is armed.
        }
    }

    fn on_usage_change(&mut self, _now: SimTime, _local: LocalView, _out: &mut Actions) {
        // No unsolicited updates in pure pull.
    }

    fn on_message(
        &mut self,
        now: SimTime,
        _from: NodeId,
        msg: &Message,
        local: LocalView,
        out: &mut Actions,
    ) {
        match msg {
            Message::Help(h) => {
                if h.organizer != self.me && self.policy.should_answer_help(local.queue_frac) {
                    out.unicast(h.organizer, Message::Pledge(self.make_pledge(now, local)));
                }
            }
            Message::Pledge(p) => {
                self.store
                    .record_report(p.pledger, p.headroom_secs, now, p.sent_at);
            }
            Message::Advert(_) => {}
        }
    }

    fn on_timer(&mut self, _now: SimTime, _token: TimerToken, _local: LocalView, _out: &mut Actions) {}

    fn pick_candidate(&mut self, now: SimTime, need_secs: f64) -> Option<NodeId> {
        self.last_need_secs = need_secs;
        self.store.pick(
            now,
            need_secs,
            self.cfg.info_ttl,
            self.me,
            self.cfg.candidate_policy,
        )
    }

    fn on_migration_result(&mut self, now: SimTime, dest: NodeId, admitted: bool) {
        if admitted {
            if let Some(r) = self.store.get(dest) {
                self.store
                    .record(dest, (r.headroom_secs - self.last_need_secs).max(0.0), now);
            }
        } else {
            self.store.record(dest, 0.0, now);
        }
    }

    fn introspect(&self, _now: SimTime) -> Introspection {
        Introspection {
            help_interval_secs: Some(self.help.interval().as_secs_f64()),
            known_candidates: self.store.len(),
            memberships: 0,
            lifetime_joins: 0,
        }
    }

    fn on_reset(&mut self, _now: SimTime) {
        self.help.reset();
        self.policy = PledgePolicy::new(&self.cfg, 0.0);
        self.store = AvailabilityStore::new();
        self.last_need_secs = 0.0;
        self.helped_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Action;

    fn view(headroom: f64) -> LocalView {
        LocalView::new(headroom, 100.0)
    }

    fn at(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn every_overloaded_arrival_floods() {
        let mut p = PurePull::new(0, ProtocolConfig::paper());
        for i in 0..20 {
            let mut out = Actions::new();
            p.on_task_arrival(at(i as f64 * 0.01), view(5.0), &mut out);
            assert_eq!(out.len(), 1, "arrival {i} must flood, no rate limiting");
            assert!(matches!(out.as_slice()[0], Action::Flood(Message::Help(_))));
        }
    }

    #[test]
    fn underloaded_arrivals_are_silent() {
        let mut p = PurePull::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        p.on_task_arrival(at(0.0), view(50.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn answers_help_exactly_once_per_help() {
        let mut p = PurePull::new(1, ProtocolConfig::paper());
        let help = Message::Help(Help {
            organizer: 0,
            member_count: 1,
            urgency: 1.0,
            relay_ttl: 0,
        });
        let mut out = Actions::new();
        p.on_message(at(1.0), 0, &help, view(80.0), &mut out);
        assert_eq!(out.len(), 1);
        // A usage change does NOT generate an unsolicited pledge.
        let mut out = Actions::new();
        p.on_usage_change(at(2.0), view(2.0), &mut out);
        p.on_usage_change(at(3.0), view(80.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn busy_node_stays_silent_on_help() {
        let mut p = PurePull::new(1, ProtocolConfig::paper());
        let help = Message::Help(Help {
            organizer: 0,
            member_count: 1,
            urgency: 1.0,
            relay_ttl: 0,
        });
        let mut out = Actions::new();
        p.on_message(at(1.0), 0, &help, view(5.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn pledges_feed_candidates() {
        let mut p = PurePull::new(0, ProtocolConfig::paper());
        let pledge = Message::Pledge(Pledge {
            pledger: 3,
            headroom_secs: 40.0,
            community_count: 0,
            grant_probability: 0.4,
            sent_at: SimTime::ZERO,
        });
        p.on_message(at(1.0), 3, &pledge, view(5.0), &mut Actions::new());
        assert_eq!(p.pick_candidate(at(1.0), 10.0), Some(3));
    }
}
