//! Pure PUSH ("Push-1"): *"each host disseminates its own resource
//! availability information to its neighbors unconditionally at every preset
//! interval"* — a periodic flood regardless of load, the paper's
//! highest-overhead baseline.

use crate::config::ProtocolConfig;
use crate::message::{Advert, Message};
use crate::pledge::AvailabilityStore;
use crate::protocol::{Actions, DiscoveryProtocol, Introspection, LocalView, TimerToken};
use realtor_net::NodeId;
use realtor_simcore::SimTime;

/// The pure-push baseline instance for one node.
#[derive(Debug)]
pub struct PurePush {
    me: NodeId,
    cfg: ProtocolConfig,
    store: AvailabilityStore,
    /// Generation guard so resets invalidate in-flight ticks.
    epoch: u64,
    last_need_secs: f64,
}

impl PurePush {
    /// Create a pure-push instance for `me`.
    pub fn new(me: NodeId, cfg: ProtocolConfig) -> Self {
        cfg.validate();
        PurePush {
            me,
            cfg,
            store: AvailabilityStore::new(),
            epoch: 0,
            last_need_secs: 0.0,
        }
    }

    /// Immutable view of the advertisement cache.
    pub fn store(&self) -> &AvailabilityStore {
        &self.store
    }

    fn advertise(&self, now: SimTime, local: LocalView, out: &mut Actions) {
        out.flood(Message::Advert(Advert {
            advertiser: self.me,
            headroom_secs: local.headroom_secs,
            sent_at: now,
        }));
    }
}

impl DiscoveryProtocol for PurePush {
    fn name(&self) -> &'static str {
        "Push-1"
    }

    fn node(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self, now: SimTime, local: LocalView, out: &mut Actions) {
        // Advertise immediately, then every push_interval.
        self.advertise(now, local, out);
        out.set_timer(TimerToken(self.epoch), self.cfg.push_interval);
    }

    fn on_task_arrival(&mut self, _now: SimTime, _local: LocalView, _out: &mut Actions) {
        // Pure push never solicits.
    }

    fn on_usage_change(&mut self, _now: SimTime, _local: LocalView, _out: &mut Actions) {
        // Dissemination is strictly periodic.
    }

    fn on_message(
        &mut self,
        now: SimTime,
        _from: NodeId,
        msg: &Message,
        _local: LocalView,
        _out: &mut Actions,
    ) {
        if let Message::Advert(a) = msg {
            if a.advertiser != self.me {
                self.store
                    .record_report(a.advertiser, a.headroom_secs, now, a.sent_at);
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, token: TimerToken, local: LocalView, out: &mut Actions) {
        if token.0 != self.epoch {
            return; // tick from before a reset
        }
        self.advertise(now, local, out);
        out.set_timer(TimerToken(self.epoch), self.cfg.push_interval);
    }

    fn pick_candidate(&mut self, now: SimTime, need_secs: f64) -> Option<NodeId> {
        self.last_need_secs = need_secs;
        self.store.pick(
            now,
            need_secs,
            self.cfg.info_ttl,
            self.me,
            self.cfg.candidate_policy,
        )
    }

    fn on_migration_result(&mut self, now: SimTime, dest: NodeId, admitted: bool) {
        if admitted {
            if let Some(r) = self.store.get(dest) {
                self.store
                    .record(dest, (r.headroom_secs - self.last_need_secs).max(0.0), now);
            }
        } else {
            self.store.record(dest, 0.0, now);
        }
    }

    fn introspect(&self, _now: SimTime) -> Introspection {
        Introspection {
            help_interval_secs: None,
            known_candidates: self.store.len(),
            memberships: 0,
            lifetime_joins: 0,
        }
    }

    fn on_reset(&mut self, _now: SimTime) {
        self.store = AvailabilityStore::new();
        self.epoch += 1;
        self.last_need_secs = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Action;

    fn view(headroom: f64) -> LocalView {
        LocalView::new(headroom, 100.0)
    }

    fn at(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn start_advertises_and_arms_tick() {
        let mut p = PurePush::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        p.on_start(at(0.0), view(100.0), &mut out);
        assert_eq!(out.len(), 2);
        assert!(matches!(out.as_slice()[0], Action::Flood(Message::Advert(_))));
        assert!(matches!(out.as_slice()[1], Action::SetTimer(_, _)));
    }

    #[test]
    fn tick_rearms_forever() {
        let mut p = PurePush::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        p.on_start(at(0.0), view(100.0), &mut out);
        for i in 1..=5 {
            let mut out = Actions::new();
            p.on_timer(at(i as f64), TimerToken(0), view(90.0), &mut out);
            assert_eq!(out.len(), 2, "tick {i} floods and rearms");
        }
    }

    #[test]
    fn arrivals_and_usage_changes_are_silent() {
        let mut p = PurePush::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        p.on_task_arrival(at(1.0), view(1.0), &mut out);
        p.on_usage_change(at(1.0), view(1.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn adverts_feed_candidate_choice() {
        let mut p = PurePush::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        for (n, h) in [(1, 20.0), (2, 80.0)] {
            let m = Message::Advert(Advert {
                advertiser: n,
                headroom_secs: h,
                sent_at: SimTime::ZERO,
            });
            p.on_message(at(1.0), n, &m, view(0.0), &mut out);
        }
        assert_eq!(p.pick_candidate(at(2.0), 10.0), Some(2));
    }

    #[test]
    fn own_advert_ignored() {
        let mut p = PurePush::new(7, ProtocolConfig::paper());
        let m = Message::Advert(Advert {
            advertiser: 7,
            headroom_secs: 100.0,
            sent_at: SimTime::ZERO,
        });
        p.on_message(at(1.0), 7, &m, view(0.0), &mut Actions::new());
        assert_eq!(p.pick_candidate(at(1.0), 1.0), None);
    }

    #[test]
    fn reset_invalidates_old_tick() {
        let mut p = PurePush::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        p.on_start(at(0.0), view(100.0), &mut out);
        p.on_reset(at(5.0));
        let mut out = Actions::new();
        p.on_timer(at(6.0), TimerToken(0), view(100.0), &mut out);
        assert!(out.is_empty(), "stale epoch tick must be ignored");
        // restart re-arms with the new epoch
        let mut out = Actions::new();
        p.on_start(at(7.0), view(100.0), &mut out);
        let mut out2 = Actions::new();
        p.on_timer(at(8.0), TimerToken(1), view(100.0), &mut out2);
        assert_eq!(out2.len(), 2);
    }
}
