//! Adaptive PULL ("Pull-100"): *"each host solicits PLEDGE from its
//! community members whenever 1) a task arrives, 2) the resource usage level
//! is beyond a threshold level, and 3) a time window has passed since the
//! previous HELP. […] it generates HELP messages in the same fashion as
//! REALTOR. It is different from REALTOR, however, in that it generates
//! PLEDGE exactly once in response to each HELP."*
//!
//! In other words: the full Algorithm H (with `alpha`/`beta` adaptation and
//! `Upper_limit` = 100), but only the solicited half of Algorithm P.

use crate::config::ProtocolConfig;
use crate::help::{HelpController, HelpDecision, HelpMode};
use crate::message::{Help, Message, Pledge};
use crate::pledge::{AvailabilityStore, PledgePolicy};
use crate::protocol::{Actions, DiscoveryProtocol, Introspection, LocalView, TimerToken};
use realtor_net::NodeId;
use realtor_simcore::SimTime;

/// The adaptive-pull baseline instance for one node.
#[derive(Debug)]
pub struct AdaptivePull {
    me: NodeId,
    cfg: ProtocolConfig,
    help: HelpController,
    policy: PledgePolicy,
    store: AvailabilityStore,
    last_need_secs: f64,
}

impl AdaptivePull {
    /// Create an adaptive-pull instance for `me`.
    pub fn new(me: NodeId, cfg: ProtocolConfig) -> Self {
        cfg.validate();
        AdaptivePull {
            me,
            help: HelpController::new(&cfg, HelpMode::Adaptive),
            policy: PledgePolicy::new(&cfg, 0.0),
            store: AvailabilityStore::new(),
            last_need_secs: 0.0,
            cfg,
        }
    }

    /// Immutable view of the pledge list.
    pub fn store(&self) -> &AvailabilityStore {
        &self.store
    }

    /// The Algorithm H controller (diagnostics).
    pub fn help_controller(&self) -> &HelpController {
        &self.help
    }

    fn make_pledge(&self, now: SimTime, local: LocalView) -> Pledge {
        Pledge {
            pledger: self.me,
            headroom_secs: local.headroom_secs,
            community_count: 0,
            grant_probability: (local.headroom_secs / local.capacity_secs).clamp(0.0, 1.0),
            sent_at: now,
        }
    }
}

impl DiscoveryProtocol for AdaptivePull {
    fn name(&self) -> &'static str {
        "Pull-100"
    }

    fn node(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self, _now: SimTime, _local: LocalView, _out: &mut Actions) {}

    fn on_task_arrival(&mut self, now: SimTime, local: LocalView, out: &mut Actions) {
        if let HelpDecision::SendHelp { timer_gen, wait } =
            self.help.on_task_arrival(now, local.queue_frac)
        {
            out.flood(Message::Help(Help {
                organizer: self.me,
                member_count: 0,
                urgency: local.queue_frac,
                relay_ttl: 0,
            }));
            out.set_timer(TimerToken(timer_gen), wait);
        }
    }

    fn on_usage_change(&mut self, _now: SimTime, local: LocalView, _out: &mut Actions) {
        // Track the threshold side for should_answer_help freshness, but
        // never send unsolicited pledges.
        let _ = self.policy.observe(local.queue_frac);
    }

    fn on_message(
        &mut self,
        now: SimTime,
        _from: NodeId,
        msg: &Message,
        local: LocalView,
        out: &mut Actions,
    ) {
        match msg {
            Message::Help(h) => {
                if h.organizer != self.me && self.policy.should_answer_help(local.queue_frac) {
                    out.unicast(h.organizer, Message::Pledge(self.make_pledge(now, local)));
                }
            }
            Message::Pledge(p) => {
                let fresh = self
                    .store
                    .record_report(p.pledger, p.headroom_secs, now, p.sent_at);
                let found =
                    fresh && p.pledger != self.me && p.headroom_secs >= self.last_need_secs;
                self.help.on_pledge(found);
            }
            Message::Advert(_) => {}
        }
    }

    fn on_timer(&mut self, _now: SimTime, token: TimerToken, _local: LocalView, _out: &mut Actions) {
        self.help.on_timeout(token.0);
    }

    fn pick_candidate(&mut self, now: SimTime, need_secs: f64) -> Option<NodeId> {
        self.last_need_secs = need_secs;
        self.store.pick(
            now,
            need_secs,
            self.cfg.info_ttl,
            self.me,
            self.cfg.candidate_policy,
        )
    }

    fn on_migration_result(&mut self, now: SimTime, dest: NodeId, admitted: bool) {
        if admitted {
            if let Some(r) = self.store.get(dest) {
                self.store
                    .record(dest, (r.headroom_secs - self.last_need_secs).max(0.0), now);
            }
        } else {
            self.store.record(dest, 0.0, now);
        }
    }

    fn introspect(&self, _now: SimTime) -> Introspection {
        Introspection {
            help_interval_secs: Some(self.help.interval().as_secs_f64()),
            known_candidates: self.store.len(),
            memberships: 0,
            lifetime_joins: 0,
        }
    }

    fn on_reset(&mut self, _now: SimTime) {
        self.help.reset();
        self.policy = PledgePolicy::new(&self.cfg, 0.0);
        self.store = AvailabilityStore::new();
        self.last_need_secs = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Action;
    use realtor_simcore::SimDuration;

    fn view(headroom: f64) -> LocalView {
        LocalView::new(headroom, 100.0)
    }

    fn at(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn interval_gates_help_floods() {
        let mut p = AdaptivePull::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        p.on_task_arrival(at(0.0), view(5.0), &mut out);
        assert_eq!(out.len(), 2); // flood + timer
        let mut out = Actions::new();
        p.on_task_arrival(at(0.5), view(5.0), &mut out);
        assert!(out.is_empty(), "within HELP_interval: gated");
    }

    #[test]
    fn timeout_grows_interval_up_to_100() {
        let mut p = AdaptivePull::new(0, ProtocolConfig::paper());
        let mut t = 0.0;
        for _ in 0..40 {
            let mut out = Actions::new();
            p.on_task_arrival(at(t), view(5.0), &mut out);
            if let Some(Action::SetTimer(token, _)) = out
                .as_slice()
                .iter()
                .find(|a| matches!(a, Action::SetTimer(_, _)))
            {
                p.on_timer(at(t + 1.0), *token, view(5.0), &mut Actions::new());
            }
            t += 300.0;
        }
        assert_eq!(
            p.help_controller().interval(),
            SimDuration::from_secs(100),
            "Upper_limit must clamp the interval"
        );
    }

    #[test]
    fn no_unsolicited_pledges() {
        let mut p = AdaptivePull::new(1, ProtocolConfig::paper());
        let mut out = Actions::new();
        p.on_usage_change(at(1.0), view(5.0), &mut out);
        p.on_usage_change(at(2.0), view(80.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn answers_help_when_free() {
        let mut p = AdaptivePull::new(1, ProtocolConfig::paper());
        let help = Message::Help(Help {
            organizer: 0,
            member_count: 0,
            urgency: 1.0,
            relay_ttl: 0,
        });
        let mut out = Actions::new();
        p.on_message(at(1.0), 0, &help, view(70.0), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out.as_slice()[0], Action::Unicast(0, Message::Pledge(_))));
    }

    #[test]
    fn useful_pledge_shrinks_interval() {
        let mut p = AdaptivePull::new(0, ProtocolConfig::paper());
        // Open an urgent HELP round (overflow), then answer it.
        let mut out = Actions::new();
        p.on_task_arrival(at(0.0), view(0.0), &mut out);
        let before = p.help_controller().interval();
        let pledge = Message::Pledge(Pledge {
            pledger: 2,
            headroom_secs: 90.0,
            community_count: 0,
            grant_probability: 0.9,
            sent_at: at(0.5),
        });
        p.on_message(at(0.5), 2, &pledge, view(5.0), &mut Actions::new());
        assert!(p.help_controller().interval() < before);
        // A pledge outside any round leaves the interval unchanged.
        let settled = p.help_controller().interval();
        p.on_message(at(0.7), 3, &pledge, view(5.0), &mut Actions::new());
        assert_eq!(p.help_controller().interval(), settled);
    }
}
