//! The four comparison protocols of the paper's Section 5.

pub mod adaptive_pull;
pub mod adaptive_push;
pub mod pure_pull;
pub mod pure_push;

pub use adaptive_pull::AdaptivePull;
pub use adaptive_push::AdaptivePush;
pub use pure_pull::PurePull;
pub use pure_push::PurePush;
