//! Community membership — the soft state at the heart of REALTOR.
//!
//! From the paper (Section 4): each host owns one community (the set of
//! nodes able to receive its migrating components) and is a member of
//! several others. *"The membership of a node in a community is valid only
//! for the interval between two consecutive refresh messages"* — HELP floods
//! act as the refresh. A member that has pledged keeps sending unsolicited
//! PLEDGE updates (threshold crossings) to the organizer until the
//! membership expires; an organizer that stops sending HELP lets its
//! community disband naturally.

use realtor_net::{IdMap, NodeId};
use realtor_simcore::{SimDuration, SimTime};

/// The communities this host is a *member* of, keyed by organizer.
#[derive(Debug, Clone, Default)]
pub struct MembershipTable {
    /// Last-refresh time per organizer, indexed by node id: the refresh
    /// runs once per received HELP, so lookups must be O(1), and id-indexed
    /// iteration keeps the membership listings id-ordered.
    joined: IdMap<SimTime>,
    ttl: SimDuration,
    joins: u64,
}

impl MembershipTable {
    /// Create a table whose memberships expire `ttl` after the last refresh.
    pub fn new(ttl: SimDuration) -> Self {
        MembershipTable {
            joined: Default::default(),
            ttl,
            joins: 0,
        }
    }

    /// Record a HELP (refresh) from `organizer` at `now`, joining the
    /// community or extending an existing membership. Returns `true` when
    /// this was a *new* join (no existing entry) rather than a refresh.
    pub fn refresh(&mut self, organizer: NodeId, now: SimTime) -> bool {
        let new_join = self.joined.insert(organizer, now).is_none();
        if new_join {
            self.joins += 1;
        }
        new_join
    }

    /// Lifetime count of *new* community joins (a refresh of an existing
    /// membership does not count; rejoining after leave/expiry-purge does).
    /// Survives TTL expiry of the memberships themselves — used to observe
    /// that a restored node actually re-joined communities after amnesia.
    pub fn lifetime_joins(&self) -> u64 {
        self.joins
    }

    /// Explicitly leave a community (e.g. the organizer was observed dead).
    pub fn leave(&mut self, organizer: NodeId) {
        self.joined.remove(organizer);
    }

    /// Is this host currently a member of `organizer`'s community?
    pub fn is_member(&self, organizer: NodeId, now: SimTime) -> bool {
        self.joined
            .get(organizer)
            .is_some_and(|&t| now.since(t) <= self.ttl)
    }

    /// Organizers whose communities this host currently belongs to.
    /// Expired entries are skipped (and can be purged with
    /// [`MembershipTable::purge_expired`]).
    pub fn current(&self, now: SimTime) -> Vec<NodeId> {
        self.joined
            .iter()
            .filter(|&(_, &t)| now.since(t) <= self.ttl)
            .map(|(org, _)| org)
            .collect()
    }

    /// Number of live memberships — the `number of communities` field of a
    /// PLEDGE message.
    pub fn count(&self, now: SimTime) -> u32 {
        self.joined
            .values()
            .filter(|&&t| now.since(t) <= self.ttl)
            .count() as u32
    }

    /// Drop expired memberships; returns how many were removed.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let ttl = self.ttl;
        self.joined.retain(|_, &mut t| now.since(t) <= ttl)
    }
}

/// The community this host *owns* as an organizer: its pledged members.
///
/// Tracked for the `number of current members` field of HELP and for
/// diagnostics; the actual candidate data lives in
/// [`crate::pledge::AvailabilityStore`].
#[derive(Debug, Clone, Default)]
pub struct OwnCommunity {
    /// Last-pledge time per member, indexed by node id (one update per
    /// received PLEDGE — the organizer-side hot path).
    members: IdMap<SimTime>,
    ttl: SimDuration,
}

impl OwnCommunity {
    /// Create with the given member-expiry TTL (a member that has not
    /// re-pledged within `ttl` "de facto leaves the community").
    pub fn new(ttl: SimDuration) -> Self {
        OwnCommunity {
            members: Default::default(),
            ttl,
        }
    }

    /// Record a PLEDGE from `member`.
    pub fn pledge_received(&mut self, member: NodeId, now: SimTime) {
        self.members.insert(member, now);
    }

    /// Drop `member` immediately (it was observed dead) rather than waiting
    /// for its pledge to age out.
    pub fn remove(&mut self, member: NodeId) {
        self.members.remove(member);
    }

    /// Number of live members at `now`.
    pub fn member_count(&self, now: SimTime) -> u32 {
        self.members
            .values()
            .filter(|&&t| now.since(t) <= self.ttl)
            .count() as u32
    }

    /// Live member ids at `now`.
    pub fn members(&self, now: SimTime) -> Vec<NodeId> {
        self.members
            .iter()
            .filter(|&(_, &t)| now.since(t) <= self.ttl)
            .map(|(m, _)| m)
            .collect()
    }

    /// Drop expired members.
    pub fn purge_expired(&mut self, now: SimTime) {
        let ttl = self.ttl;
        self.members.retain(|_, &mut t| now.since(t) <= ttl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TTL: SimDuration = SimDuration::from_secs(100);

    #[test]
    fn membership_expires_after_ttl() {
        let mut m = MembershipTable::new(TTL);
        m.refresh(7, SimTime::from_secs(0));
        assert!(m.is_member(7, SimTime::from_secs(100)));
        assert!(!m.is_member(7, SimTime::from_secs(101)));
        assert_eq!(m.count(SimTime::from_secs(50)), 1);
        assert_eq!(m.count(SimTime::from_secs(200)), 0);
    }

    #[test]
    fn refresh_extends_membership() {
        let mut m = MembershipTable::new(TTL);
        m.refresh(7, SimTime::from_secs(0));
        m.refresh(7, SimTime::from_secs(90));
        assert!(m.is_member(7, SimTime::from_secs(150)));
    }

    #[test]
    fn current_lists_only_live_memberships() {
        let mut m = MembershipTable::new(TTL);
        m.refresh(1, SimTime::from_secs(0));
        m.refresh(2, SimTime::from_secs(150));
        assert_eq!(m.current(SimTime::from_secs(160)), vec![2]);
        m.purge_expired(SimTime::from_secs(160));
        assert_eq!(m.count(SimTime::from_secs(160)), 1);
    }

    #[test]
    fn leave_is_immediate() {
        let mut m = MembershipTable::new(TTL);
        m.refresh(1, SimTime::ZERO);
        m.leave(1);
        assert!(!m.is_member(1, SimTime::ZERO));
    }

    #[test]
    fn lifetime_joins_counts_distinct_joins_not_refreshes() {
        let mut m = MembershipTable::new(TTL);
        assert_eq!(m.lifetime_joins(), 0);
        assert!(m.refresh(1, SimTime::ZERO), "first contact is a join");
        assert!(!m.refresh(1, SimTime::from_secs(5)), "refresh, not a new join");
        assert!(m.refresh(2, SimTime::ZERO));
        assert_eq!(m.lifetime_joins(), 2);
        m.leave(1);
        assert!(m.refresh(1, SimTime::from_secs(10)), "rejoin after leaving");
        assert_eq!(m.lifetime_joins(), 3);
    }

    #[test]
    fn purge_reports_how_many_expired() {
        let mut m = MembershipTable::new(TTL);
        m.refresh(1, SimTime::from_secs(0));
        m.refresh(2, SimTime::from_secs(0));
        m.refresh(3, SimTime::from_secs(150));
        assert_eq!(m.purge_expired(SimTime::from_secs(160)), 2);
        assert_eq!(m.purge_expired(SimTime::from_secs(160)), 0);
    }

    #[test]
    fn own_community_remove_is_immediate() {
        let mut c = OwnCommunity::new(TTL);
        c.pledge_received(3, SimTime::ZERO);
        c.remove(3);
        assert_eq!(c.member_count(SimTime::ZERO), 0);
    }

    #[test]
    fn own_community_counts_live_members() {
        let mut c = OwnCommunity::new(TTL);
        c.pledge_received(3, SimTime::from_secs(0));
        c.pledge_received(4, SimTime::from_secs(60));
        assert_eq!(c.member_count(SimTime::from_secs(50)), 2);
        assert_eq!(c.member_count(SimTime::from_secs(120)), 1);
        assert_eq!(c.members(SimTime::from_secs(120)), vec![4]);
        c.purge_expired(SimTime::from_secs(120));
        assert_eq!(c.members(SimTime::from_secs(0)), vec![4]);
    }
}
