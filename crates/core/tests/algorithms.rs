//! Conformance tests transcribed from the paper's pseudo-code for
//! Algorithm H (Figure 2, the adaptive HELP-interval controller) and
//! Algorithm P (Figure 3, the pledge policy). Each test quotes the exact
//! line of pseudo-code it checks, with the paper's parameters
//! (`alpha = beta = 0.5`, `Upper_limit = 100 s`, thresholds `0.9`).

use realtor_core::config::ProtocolConfig;
use realtor_core::help::{HelpController, HelpDecision, HelpMode};
use realtor_core::pledge::{Crossing, PledgePolicy};
use realtor_simcore::{SimDuration, SimTime};

fn cfg() -> ProtocolConfig {
    ProtocolConfig::paper()
}

fn secs(d: SimDuration) -> f64 {
    d.as_secs_f64()
}

/// Open a HELP round at time `t` (urgent: the arrival overflows the queue)
/// and return the timer generation.
fn open_round(h: &mut HelpController, t: f64) -> u64 {
    match h.on_task_arrival(SimTime::from_secs_f64(t), 1.0) {
        HelpDecision::SendHelp { timer_gen, .. } => timer_gen,
        HelpDecision::Hold => panic!("expected a HELP at t={t}"),
    }
}

#[test]
fn paper_parameters_are_wired() {
    let c = cfg();
    assert_eq!(c.alpha, 0.5, "paper: alpha = 0.5");
    assert_eq!(c.beta, 0.5, "paper: beta = 0.5");
    assert_eq!(c.upper_limit, SimDuration::from_secs(100), "paper: Upper_limit = 100 s");
    assert_eq!(c.initial_help_interval, SimDuration::from_secs(1));
    assert_eq!(c.help_threshold, 0.9, "paper: 90% HELP threshold");
    assert_eq!(c.pledge_threshold, 0.9, "paper: 90% PLEDGE threshold");
}

/// "Timeout do { If ((HELP_interval + HELP_interval * alpha) < Upper_limit)
///  HELP_interval += HELP_interval * alpha; }"
///
/// Each unanswered round multiplies the interval by (1 + alpha): the exact
/// geometric sequence 1, 1.5, 2.25, 3.375, ... s.
#[test]
fn algorithm_h_timeout_multiplies_interval_by_alpha() {
    let c = cfg();
    let mut h = HelpController::new(&c, HelpMode::Adaptive);
    let mut expected = secs(c.initial_help_interval);
    let mut t = 0.0;
    for round in 0..10 {
        let gen = open_round(&mut h, t);
        assert!(h.on_timeout(gen));
        expected *= 1.0 + c.alpha;
        assert!(
            (secs(h.interval()) - expected).abs() < 1e-9 * expected,
            "after timeout {round}: interval {} != {expected}",
            secs(h.interval())
        );
        t += 1000.0; // always past the interval
    }
}

/// The growth guard: the interval saturates at `Upper_limit` and NEVER
/// exceeds it, no matter how many timeouts pile up. ("HELP_interval is
/// kept at maximum due to the repeated failure of finding available
/// resources.")
#[test]
fn algorithm_h_interval_never_exceeds_upper_limit() {
    let c = cfg();
    let mut h = HelpController::new(&c, HelpMode::Adaptive);
    let mut t = 0.0;
    for _ in 0..64 {
        let gen = open_round(&mut h, t);
        assert!(h.on_timeout(gen));
        assert!(
            h.interval() <= c.upper_limit,
            "interval {:?} exceeded Upper_limit",
            h.interval()
        );
        t += 1000.0;
    }
    // 1 * 1.5^k crosses 100 at k = 12; far past that, the clamp must hold
    // the interval exactly at the limit.
    assert_eq!(h.interval(), c.upper_limit);
}

/// "If a node is found for migration { If ((HELP_interval -
///  HELP_interval * beta) > 0) HELP_interval -= HELP_interval * beta; }"
///
/// A successful round contracts the interval by exactly beta.
#[test]
fn algorithm_h_success_contracts_interval_by_beta() {
    let c = cfg();
    let mut h = HelpController::new(&c, HelpMode::Adaptive);
    let mut t = 0.0;
    // Grow to 1.5^4 first so contraction has room to act.
    for _ in 0..4 {
        let gen = open_round(&mut h, t);
        h.on_timeout(gen);
        t += 1000.0;
    }
    let mut expected = secs(c.initial_help_interval) * (1.0 + c.alpha).powi(4);
    for round in 0..4 {
        open_round(&mut h, t);
        h.on_pledge(true); // "a node is found for migration"
        expected *= 1.0 - c.beta;
        assert!(
            (secs(h.interval()) - expected).abs() < 1e-9 * (1.0 + expected),
            "after success {round}: interval {} != {expected}",
            secs(h.interval())
        );
        t += 1000.0;
    }
}

/// The contraction guard "( ... ) > 0": however many successes arrive, the
/// interval halves toward zero but never reaches it, so HELP gating can
/// always recover.
#[test]
fn algorithm_h_contraction_never_reaches_zero() {
    let c = cfg();
    let mut h = HelpController::new(&c, HelpMode::Adaptive);
    let mut t = 0.0;
    for _ in 0..500 {
        open_round(&mut h, t);
        h.on_pledge(true);
        assert!(!h.interval().is_zero(), "interval hit zero");
        t += 1000.0;
    }
}

/// "If ((T_current - T_sent) > HELP_interval) { send HELP; set_timer; }" —
/// the gate is strict: an arrival exactly one interval after the last HELP
/// still holds.
#[test]
fn algorithm_h_send_gate_is_strict() {
    let mut h = HelpController::new(&cfg(), HelpMode::Adaptive);
    open_round(&mut h, 0.0);
    assert_eq!(
        h.on_task_arrival(SimTime::from_secs(1), 1.0),
        HelpDecision::Hold,
        "T_current - T_sent == HELP_interval must hold, not send"
    );
    assert!(matches!(
        h.on_task_arrival(SimTime::from_secs_f64(1.001), 1.0),
        HelpDecision::SendHelp { .. }
    ));
}

/// Growth and contraction compose multiplicatively: k timeouts then k
/// successes land on initial * (1+alpha)^k * (1-beta)^k exactly — with the
/// paper's alpha = beta = 0.5 that is 0.75^k of the initial interval.
#[test]
fn algorithm_h_growth_then_contraction_composes() {
    let c = cfg();
    let mut h = HelpController::new(&c, HelpMode::Adaptive);
    let k = 6;
    let mut t = 0.0;
    for _ in 0..k {
        let gen = open_round(&mut h, t);
        h.on_timeout(gen);
        t += 1000.0;
    }
    for _ in 0..k {
        open_round(&mut h, t);
        h.on_pledge(true);
        t += 1000.0;
    }
    let expected =
        secs(c.initial_help_interval) * ((1.0 + c.alpha) * (1.0 - c.beta)).powi(k);
    assert!(
        (secs(h.interval()) - expected).abs() < 1e-9,
        "interval {} != {expected}",
        secs(h.interval())
    );
}

/// "Whenever a HELP message arrives do { If the host has used its resource
///  less than a threshold level Reply PLEDGE; }" — strict less-than.
#[test]
fn algorithm_p_answers_help_strictly_below_threshold() {
    let c = cfg();
    let p = PledgePolicy::new(&c, 0.0);
    assert!(p.should_answer_help(0.0));
    assert!(p.should_answer_help(c.pledge_threshold - 1e-9));
    assert!(!p.should_answer_help(c.pledge_threshold), "at threshold: no pledge");
    assert!(!p.should_answer_help(1.0));
}

/// "Whenever the resource availability changes across the threshold level
///  do { Reply PLEDGE; }" — the unsolicited PLEDGE fires exactly when the
/// crossing happens, once per crossing, in both directions.
#[test]
fn algorithm_p_unsolicited_pledge_exactly_on_crossing() {
    let c = cfg();
    let mut p = PledgePolicy::new(&c, 0.0);
    let th = c.pledge_threshold;

    // Climbing toward the threshold from below: silent.
    assert_eq!(p.observe(0.2), None);
    assert_eq!(p.observe(th - 0.001), None);
    // The instant usage reaches the threshold: one upward crossing.
    assert_eq!(p.observe(th), Some(Crossing::BecameBusy));
    // Staying above: silent, however often observed.
    assert_eq!(p.observe(th + 0.05), None);
    assert_eq!(p.observe(1.0), None);
    // Falling back below: one downward crossing (the unsolicited PLEDGE
    // REALTOR sends when capacity frees up).
    assert_eq!(p.observe(th - 0.001), Some(Crossing::BecameFree));
    // And again silent until the next real crossing.
    assert_eq!(p.observe(0.0), None);
    assert_eq!(p.observe(th), Some(Crossing::BecameBusy));
}

/// A host that starts at-or-above the threshold must not fire a spurious
/// upward crossing on its first observation.
#[test]
fn algorithm_p_initial_side_respected() {
    let c = cfg();
    let mut busy = PledgePolicy::new(&c, 1.0);
    assert!(busy.is_above());
    assert_eq!(busy.observe(0.95), None, "still above: no crossing");
    assert_eq!(busy.observe(0.1), Some(Crossing::BecameFree));

    let mut free = PledgePolicy::new(&c, 0.0);
    assert!(!free.is_above());
    assert_eq!(free.observe(0.5), None);
}

/// An oscillating workload hugging the threshold produces alternating
/// crossings — never two of the same kind in a row (the paper's pledge /
/// withdraw pairing depends on this).
#[test]
fn algorithm_p_crossings_alternate_under_oscillation() {
    let c = cfg();
    let mut p = PledgePolicy::new(&c, 0.0);
    let mut last: Option<Crossing> = None;
    for i in 0..100 {
        let frac = if i % 2 == 0 { 0.95 } else { 0.85 };
        let crossing = p.observe(frac).expect("every flip crosses");
        if let Some(prev) = last {
            assert_ne!(prev, crossing, "crossing direction must alternate");
        }
        last = Some(crossing);
    }
}
