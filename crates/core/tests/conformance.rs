//! Protocol conformance battery: behavioural contracts every discovery
//! protocol must satisfy, run table-driven against all five implementations
//! (plus the inter-community wrapper). These are the assumptions the
//! simulation harness and the Agile Objects runtime rely on.

use realtor_core::inter_community::InterCommunityRealtor;
use realtor_core::protocol::{Action, Actions, DiscoveryProtocol, LocalView, TimerToken};
use realtor_core::{Help, Message, Pledge, ProtocolConfig, ProtocolKind};
use realtor_simcore::SimTime;

const ME: usize = 3;
const PEERS: usize = 10;

fn all_protocols() -> Vec<Box<dyn DiscoveryProtocol>> {
    let peers: Vec<usize> = (0..PEERS).collect();
    let mut v: Vec<Box<dyn DiscoveryProtocol>> = ProtocolKind::ALL
        .iter()
        .map(|k| k.build(ME, ProtocolConfig::paper(), &peers, 100.0))
        .collect();
    v.push(Box::new(InterCommunityRealtor::new(
        ME,
        ProtocolConfig::paper(),
        true,
        1,
        0.0,
    )));
    v
}

fn at(secs: f64) -> SimTime {
    SimTime::from_secs_f64(secs)
}

fn view(headroom: f64) -> LocalView {
    LocalView::new(headroom, 100.0)
}

fn pledge_from(node: usize, headroom: f64) -> Message {
    Message::Pledge(Pledge {
        pledger: node,
        headroom_secs: headroom,
        community_count: 1,
        grant_probability: headroom / 100.0,
        sent_at: SimTime::ZERO,
    })
}

fn advert_from(node: usize, headroom: f64) -> Message {
    Message::Advert(realtor_core::Advert {
        advertiser: node,
        headroom_secs: headroom,
        sent_at: SimTime::ZERO,
    })
}

/// Feed one availability report in both wire forms; each protocol records
/// whichever it understands (pledges for the pull family, adverts for the
/// push family).
fn feed_report(
    p: &mut dyn DiscoveryProtocol,
    now: SimTime,
    node: usize,
    headroom: f64,
    out: &mut Actions,
) {
    p.on_message(now, node, &pledge_from(node, headroom), view(50.0), out);
    p.on_message(now, node, &advert_from(node, headroom), view(50.0), out);
    out.drain().for_each(drop);
}

fn help_from(node: usize) -> Message {
    Message::Help(Help {
        organizer: node,
        member_count: 0,
        urgency: 0.9,
        relay_ttl: 1,
    })
}

/// Drive a protocol through a generic life cycle, collecting every action.
fn exercise(p: &mut dyn DiscoveryProtocol) -> Vec<Action> {
    let mut collected = Vec::new();
    let mut out = Actions::new();
    let grab = |out: &mut Actions, collected: &mut Vec<Action>| {
        collected.extend(out.drain());
    };
    p.on_start(at(0.0), view(100.0), &mut out);
    grab(&mut out, &mut collected);
    for i in 1..=20 {
        let headroom = if i % 3 == 0 { 2.0 } else { 60.0 };
        p.on_task_arrival(at(i as f64), view(headroom), &mut out);
        grab(&mut out, &mut collected);
        p.on_usage_change(at(i as f64 + 0.1), view(headroom), &mut out);
        grab(&mut out, &mut collected);
        p.on_message(at(i as f64 + 0.2), (i % PEERS + 1) % PEERS, &help_from((i + 1) % PEERS), view(headroom), &mut out);
        grab(&mut out, &mut collected);
        p.on_message(at(i as f64 + 0.3), (i + 2) % PEERS, &pledge_from((i + 2) % PEERS, 50.0), view(headroom), &mut out);
        grab(&mut out, &mut collected);
        p.on_timer(at(i as f64 + 0.5), TimerToken(i as u64), view(headroom), &mut out);
        grab(&mut out, &mut collected);
    }
    collected
}

#[test]
fn protocols_never_unicast_to_themselves() {
    for mut p in all_protocols() {
        let actions = exercise(p.as_mut());
        for a in &actions {
            if let Action::Unicast(to, _) = a {
                assert_ne!(*to, ME, "{} unicast to itself", p.name());
            }
        }
    }
}

#[test]
fn floods_carry_the_senders_identity() {
    for mut p in all_protocols() {
        let actions = exercise(p.as_mut());
        for a in &actions {
            if let Action::Flood(msg) = a {
                // A relayed HELP legitimately carries the original
                // organizer; everything else must identify the sender.
                if p.name() != "REALTOR-IC" {
                    assert_eq!(
                        msg.origin(),
                        ME,
                        "{} flooded a message claiming origin {}",
                        p.name(),
                        msg.origin()
                    );
                }
            }
        }
    }
}

#[test]
fn pick_candidate_never_returns_self() {
    for mut p in all_protocols() {
        // Feed availability from every peer, including a spoofed self-report.
        let mut out = Actions::new();
        for node in 0..PEERS {
            feed_report(p.as_mut(), at(1.0), node, 90.0, &mut out);
        }
        for _ in 0..5 {
            if let Some(c) = p.pick_candidate(at(2.0), 5.0) {
                assert_ne!(c, ME, "{} picked itself", p.name());
                p.on_migration_result(at(2.0), c, false);
            }
        }
    }
}

#[test]
fn candidates_with_insufficient_headroom_are_never_picked() {
    for mut p in all_protocols() {
        let mut out = Actions::new();
        for node in 0..PEERS {
            if node != ME {
                feed_report(p.as_mut(), at(1.0), node, 3.0, &mut out);
            }
        }
        if p.name() == "Push-.9" {
            // Adaptive push seeds an optimistic prior for peers it has not
            // heard from; on_start has not run here so no prior exists, but
            // keep the exemption documented and explicit.
            p.on_start(at(0.0), view(100.0), &mut out);
            continue;
        }
        assert_eq!(
            p.pick_candidate(at(2.0), 10.0),
            None,
            "{} picked a 3s-headroom node for a 10s task",
            p.name()
        );
    }
}

#[test]
fn reset_drops_all_candidates_except_documented_priors() {
    for mut p in all_protocols() {
        let mut out = Actions::new();
        for node in 0..PEERS {
            feed_report(p.as_mut(), at(1.0), node, 90.0, &mut out);
        }
        p.on_reset(at(2.0));
        let candidate = p.pick_candidate(at(2.0), 5.0);
        if p.name() == "Push-.9" {
            // Adaptive push re-seeds its optimistic prior by design.
            assert!(candidate.is_some());
        } else {
            assert_eq!(candidate, None, "{} kept candidates across reset", p.name());
        }
    }
}

#[test]
fn repeated_resets_and_restarts_are_idempotent() {
    for mut p in all_protocols() {
        for round in 0..3 {
            let mut out = Actions::new();
            p.on_reset(at(round as f64 * 10.0));
            p.on_start(at(round as f64 * 10.0 + 0.1), view(100.0), &mut out);
            // No panic, and the action stream stays bounded per round.
            assert!(out.len() <= 4, "{} burst {} actions on restart", p.name(), out.len());
        }
    }
}

#[test]
fn stale_timers_do_not_generate_traffic_storms() {
    for mut p in all_protocols() {
        let mut out = Actions::new();
        for g in 0..1000u64 {
            p.on_timer(at(5.0), TimerToken(g), view(50.0), &mut out);
        }
        // Pure push re-arms its tick; everything else should be quiet on
        // unknown tokens. Either way: bounded, not 1000 floods.
        assert!(
            out.len() <= 4,
            "{} produced {} actions from stale timers",
            p.name(),
            out.len()
        );
    }
}

#[test]
fn introspection_reports_candidates() {
    for mut p in all_protocols() {
        let mut out = Actions::new();
        for node in 0..PEERS {
            if node != ME {
                feed_report(p.as_mut(), at(1.0), node, 40.0, &mut out);
            }
        }
        let intro = p.introspect(at(1.5));
        assert!(
            intro.known_candidates >= PEERS - 1,
            "{} reports {} candidates after {} pledges",
            p.name(),
            intro.known_candidates,
            PEERS - 1
        );
    }
}

#[test]
fn migration_refusal_suppresses_reselection() {
    for mut p in all_protocols() {
        let mut out = Actions::new();
        // exactly one candidate
        feed_report(p.as_mut(), at(1.0), 5, 90.0, &mut out);
        if p.name() == "Push-.9" {
            continue; // optimistic prior offers more candidates by design
        }
        assert_eq!(p.pick_candidate(at(2.0), 5.0), Some(5), "{}", p.name());
        p.on_migration_result(at(2.0), 5, false);
        assert_eq!(
            p.pick_candidate(at(2.0), 5.0),
            None,
            "{} re-picked a node that just refused",
            p.name()
        );
    }
}
