//! Property-based tests for the protocol building blocks, on the in-tree
//! `check` harness.

use realtor_core::config::{CandidatePolicy, ProtocolConfig};
use realtor_core::help::{HelpController, HelpDecision, HelpMode};
use realtor_core::pledge::{AvailabilityStore, Crossing, PledgePolicy};
use realtor_simcore::prelude::*;
use realtor_simcore::{prop_assert, prop_assert_eq, prop_assert_ne};

fn cfg() -> ProtocolConfig {
    ProtocolConfig::paper()
}

/// Algorithm H invariant: the HELP interval always stays within
/// `(0, Upper_limit]` no matter what sequence of arrivals, timeouts and
/// pledges occurs.
#[test]
fn help_interval_always_bounded() {
    forall(
        "help_interval_always_bounded",
        0xC04E01,
        256,
        |r| gen::vec(r, 1, 300, |r| gen::u8_in(r, 0, 4)),
        |ops| {
            let c = cfg();
            let mut h = HelpController::new(&c, HelpMode::Adaptive);
            let mut now = 0.0f64;
            let mut pending: Option<u64> = None;
            for &op in ops {
                now += 0.37;
                match op {
                    0 => {
                        if let HelpDecision::SendHelp { timer_gen, .. } =
                            h.on_task_arrival(SimTime::from_secs_f64(now), 0.95)
                        {
                            pending = Some(timer_gen);
                        }
                    }
                    1 => {
                        if let Some(g) = pending.take() {
                            h.on_timeout(g);
                        }
                    }
                    2 => h.on_pledge(true),
                    _ => h.on_pledge(false),
                }
                prop_assert!(!h.interval().is_zero(), "interval hit zero");
                prop_assert!(
                    h.interval() <= c.upper_limit,
                    "interval exceeded Upper_limit: {:?}",
                    h.interval()
                );
            }
            Ok(())
        },
    );
}

/// Algorithm H never sends two HELPs within one interval (adaptive mode),
/// regardless of arrival pattern.
#[test]
fn help_sends_respect_interval() {
    forall(
        "help_sends_respect_interval",
        0xC04E02,
        256,
        |r| gen::vec(r, 1, 200, |r| gen::f64_in(r, 0.0, 3.0)),
        |gaps| {
            let mut h = HelpController::new(&cfg(), HelpMode::Adaptive);
            let mut now = 0.0;
            let mut last_sent: Option<(f64, f64)> = None; // (time, interval_at_send)
            for &gap in gaps {
                now += gap;
                let interval_before = h.interval().as_secs_f64();
                if let HelpDecision::SendHelp { .. } =
                    h.on_task_arrival(SimTime::from_secs_f64(now), 0.99)
                {
                    if let Some((prev, int_at_prev)) = last_sent {
                        prop_assert!(
                            now - prev > int_at_prev - 1e-9,
                            "HELP at {now} too soon after {prev} (interval {int_at_prev})"
                        );
                    }
                    last_sent = Some((now, interval_before));
                }
            }
            Ok(())
        },
    );
}

/// Algorithm P: crossings strictly alternate busy/free.
#[test]
fn crossings_alternate() {
    forall(
        "crossings_alternate",
        0xC04E03,
        256,
        |r| gen::vec(r, 1, 500, |r| gen::f64_in(r, 0.0, 1.0)),
        |fracs| {
            let mut p = PledgePolicy::new(&cfg(), 0.0);
            let mut last: Option<Crossing> = None;
            for &f in fracs {
                if let Some(c) = p.observe(f) {
                    if let Some(prev) = last {
                        prop_assert_ne!(prev, c, "two consecutive identical crossings");
                    }
                    last = Some(c);
                }
            }
            Ok(())
        },
    );
}

/// The number of crossings equals the number of true sign changes of
/// (frac >= threshold) in the input sequence.
#[test]
fn crossing_count_matches_sign_changes() {
    forall(
        "crossing_count_matches_sign_changes",
        0xC04E04,
        256,
        |r| gen::vec(r, 1, 300, |r| gen::f64_in(r, 0.0, 1.0)),
        |fracs| {
            let c = cfg();
            let mut p = PledgePolicy::new(&c, 0.0);
            let mut crossings = 0usize;
            let mut side = false; // starts below
            let mut expected = 0usize;
            for &f in fracs {
                if p.observe(f).is_some() {
                    crossings += 1;
                }
                let s = f >= c.pledge_threshold;
                if s != side {
                    expected += 1;
                    side = s;
                }
            }
            prop_assert_eq!(crossings, expected);
            Ok(())
        },
    );
}

/// AvailabilityStore::pick never returns the excluded node, a node with
/// insufficient reported headroom, or a stale report.
#[test]
fn store_pick_is_sound() {
    forall(
        "store_pick_is_sound",
        0xC04E05,
        256,
        |r| {
            (
                gen::vec(r, 0, 60, |r| {
                    (
                        gen::usize_in(r, 0, 20),
                        gen::f64_in(r, 0.0, 100.0),
                        gen::u64_in(r, 0, 100),
                    )
                }),
                gen::f64_in(r, 0.0, 100.0),
                gen::usize_in(r, 0, 20),
                gen::u64_in(r, 1, 200),
            )
        },
        |(reports, need, exclude, ttl_secs)| {
            let (need, exclude, ttl_secs) = (*need, *exclude, *ttl_secs);
            let mut s = AvailabilityStore::new();
            for &(n, h, t) in reports {
                s.record(n, h, SimTime::from_secs(t));
            }
            let now = SimTime::from_secs(100);
            let ttl = Some(SimDuration::from_secs(ttl_secs));
            for policy in [
                CandidatePolicy::MostHeadroom,
                CandidatePolicy::Freshest,
                CandidatePolicy::FirstFit,
            ] {
                if let Some(n) = s.pick(now, need, ttl, exclude, policy) {
                    prop_assert_ne!(n, exclude);
                    let r = s.get(n).unwrap();
                    prop_assert!(r.headroom_secs >= need);
                    prop_assert!(now.since(r.at) <= SimDuration::from_secs(ttl_secs));
                }
            }
            Ok(())
        },
    );
}

/// MostHeadroom pick dominates all other eligible candidates.
#[test]
fn most_headroom_is_maximal() {
    forall(
        "most_headroom_is_maximal",
        0xC04E06,
        256,
        |r| {
            (
                gen::vec(r, 1, 40, |r| (gen::usize_in(r, 0, 20), gen::f64_in(r, 0.0, 100.0))),
                gen::f64_in(r, 0.0, 50.0),
            )
        },
        |(reports, need)| {
            let mut s = AvailabilityStore::new();
            let t = SimTime::from_secs(1);
            for &(n, h) in reports {
                s.record(n, h, t);
            }
            if let Some(best) = s.pick(t, *need, None, usize::MAX, CandidatePolicy::MostHeadroom) {
                let best_h = s.get(best).unwrap().headroom_secs;
                for &(n, _) in reports {
                    if let Some(r) = s.get(n) {
                        prop_assert!(r.headroom_secs <= best_h);
                    }
                }
            }
            Ok(())
        },
    );
}
