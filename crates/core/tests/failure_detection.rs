//! Conformance battery for the timeout-based failure detector wired into
//! REALTOR: protocol traffic doubles as heartbeats, silence escalates
//! through suspicion to a confirmed death, and a confirmed-dead organizer's
//! community membership is torn down *before* its soft-state TTL would have
//! expired on its own — the detector must beat the TTL, otherwise it adds
//! nothing over plain soft state.

use realtor_core::protocol::{Action, Actions, DiscoveryProtocol, LocalView};
use realtor_core::realtor::DETECTOR_TIMER_TOKEN;
use realtor_core::{
    FailureDetectorConfig, Help, Message, Pledge, ProtocolConfig, ProtocolKind,
};
use realtor_simcore::{SimDuration, SimTime};

const ME: usize = 0;
const ORGANIZER: usize = 5;
const PEERS: usize = 10;

fn at(secs: f64) -> SimTime {
    SimTime::from_secs_f64(secs)
}

fn view() -> LocalView {
    LocalView::new(50.0, 100.0)
}

fn detector_config() -> FailureDetectorConfig {
    FailureDetectorConfig {
        suspect_after: SimDuration::from_secs(3),
        confirm_after: SimDuration::from_secs(2),
        sweep_interval: SimDuration::from_secs(1),
    }
}

/// A REALTOR instance with the detector on; membership TTL stays at the
/// paper's 10 s, so confirmation (~5.5 s of silence here) races the TTL.
fn detecting_realtor() -> Box<dyn DiscoveryProtocol> {
    let peers: Vec<usize> = (0..PEERS).collect();
    let cfg = ProtocolConfig::paper().with_failure_detector(detector_config());
    ProtocolKind::Realtor.build(ME, cfg, &peers, 100.0)
}

fn help_from(node: usize) -> Message {
    Message::Help(Help {
        organizer: node,
        member_count: 0,
        urgency: 0.9,
        relay_ttl: 1,
    })
}

fn pledge_from(node: usize, sent_at: SimTime) -> Message {
    Message::Pledge(Pledge {
        pledger: node,
        headroom_secs: 40.0,
        community_count: 1,
        grant_probability: 0.4,
        sent_at,
    })
}

/// Drive every whole-second detector sweep in `(from, to]`, returning the
/// declared-dead peers with their declaration times.
fn sweep_range(
    p: &mut dyn DiscoveryProtocol,
    from: u64,
    to: u64,
) -> Vec<(usize, SimTime)> {
    let mut declared = Vec::new();
    let mut out = Actions::new();
    for s in (from + 1)..=to {
        let now = SimTime::from_secs(s);
        p.on_timer(now, DETECTOR_TIMER_TOKEN, view(), &mut out);
        let mut rearmed = false;
        for a in out.drain() {
            match a {
                Action::DeclareDead(peer) => declared.push((peer, now)),
                Action::SetTimer(token, delay) => {
                    assert_eq!(token, DETECTOR_TIMER_TOKEN);
                    assert_eq!(delay, detector_config().sweep_interval);
                    rearmed = true;
                }
                other => panic!("unexpected action from a sweep: {other:?}"),
            }
        }
        assert!(rearmed, "sweep at t={s} failed to re-arm itself");
    }
    declared
}

#[test]
fn start_arms_the_sweep_timer() {
    let mut p = detecting_realtor();
    let mut out = Actions::new();
    p.on_start(at(0.0), view(), &mut out);
    let armed = out.drain().any(|a| {
        matches!(a, Action::SetTimer(token, _) if token == DETECTOR_TIMER_TOKEN)
    });
    assert!(armed, "on_start must arm the detector sweep");
}

#[test]
fn confirmed_dead_organizer_leaves_before_ttl_expiry() {
    let mut p = detecting_realtor();
    let mut out = Actions::new();
    p.on_start(at(0.0), view(), &mut out);
    out.drain().for_each(drop);

    // t=0.5: a HELP from the organizer joins its community (TTL 10 s, so
    // soft state alone would hold the membership until t=10.5).
    p.on_message(at(0.5), ORGANIZER, &help_from(ORGANIZER), view(), &mut out);
    out.drain().for_each(drop);
    assert_eq!(p.introspect(at(1.0)).memberships, 1);

    // Silence. Sweeps at t=1..=3 see at most 2.5 s without traffic: below
    // the 3 s suspicion bound, so nothing happens.
    assert_eq!(sweep_range(p.as_mut(), 0, 3), vec![]);
    assert_eq!(p.introspect(at(3.0)).memberships, 1);

    // t=4 marks the organizer suspect (3.5 s of silence); confirmation
    // needs 2 more seconds of suspicion, landing at the t=6 sweep.
    let declared = sweep_range(p.as_mut(), 3, 8);
    assert_eq!(declared, vec![(ORGANIZER, SimTime::from_secs(6))]);

    // The membership died with the declaration — 4.5 s before the TTL
    // would have expired it — and the detector reported exactly once.
    assert_eq!(p.introspect(at(6.0)).memberships, 0);
    assert!(at(6.0) < at(0.5) + SimDuration::from_secs(10), "sanity: TTL not expired");
}

#[test]
fn any_protocol_traffic_is_a_heartbeat() {
    let mut p = detecting_realtor();
    let mut out = Actions::new();
    p.on_start(at(0.0), view(), &mut out);
    out.drain().for_each(drop);
    p.on_message(at(0.5), ORGANIZER, &help_from(ORGANIZER), view(), &mut out);
    out.drain().for_each(drop);

    // The organizer never sends another HELP, but its pledges keep flowing
    // every 2 s — well inside the 3 s suspicion bound. No sweep through
    // t=20 may declare it dead: the detector reuses protocol traffic as
    // heartbeats rather than requiring dedicated ping messages.
    for s in 1..=20u64 {
        let now = SimTime::from_secs(s);
        if s % 2 == 0 {
            p.on_message(now, ORGANIZER, &pledge_from(ORGANIZER, now), view(), &mut out);
            out.drain().for_each(drop);
        }
        let declared = sweep_range(p.as_mut(), s - 1, s);
        assert_eq!(declared, vec![], "false confirmation at t={s}");
    }
}

#[test]
fn revived_organizer_rejoins_as_a_fresh_member() {
    let mut p = detecting_realtor();
    let mut out = Actions::new();
    p.on_start(at(0.0), view(), &mut out);
    out.drain().for_each(drop);
    p.on_message(at(0.5), ORGANIZER, &help_from(ORGANIZER), view(), &mut out);
    out.drain().for_each(drop);

    // Confirm it dead (t=6 as above), then hear from it again: the revival
    // must count as a brand-new join, not a refresh of the old membership.
    let declared = sweep_range(p.as_mut(), 0, 7);
    assert_eq!(declared.len(), 1);
    assert_eq!(p.introspect(at(7.0)).memberships, 0);
    assert_eq!(p.introspect(at(7.0)).lifetime_joins, 1);

    p.on_message(at(7.5), ORGANIZER, &help_from(ORGANIZER), view(), &mut out);
    out.drain().for_each(drop);
    assert_eq!(p.introspect(at(8.0)).memberships, 1);
    assert_eq!(p.introspect(at(8.0)).lifetime_joins, 2);

    // And the detector forgave it: no immediate re-declaration.
    assert_eq!(sweep_range(p.as_mut(), 7, 10), vec![]);
}

#[test]
fn detector_off_means_no_declarations_and_no_sweeps() {
    let peers: Vec<usize> = (0..PEERS).collect();
    let mut p = ProtocolKind::Realtor.build(ME, ProtocolConfig::paper(), &peers, 100.0);
    let mut out = Actions::new();
    p.on_start(at(0.0), view(), &mut out);
    assert!(
        !out.drain().any(|a| matches!(a, Action::SetTimer(t, _) if t == DETECTOR_TIMER_TOKEN)),
        "paper configuration must not arm detector sweeps"
    );
    p.on_message(at(0.5), ORGANIZER, &help_from(ORGANIZER), view(), &mut out);
    out.drain().for_each(drop);
    // A stray detector token is treated as an ordinary (stale) help timer.
    p.on_timer(at(30.0), DETECTOR_TIMER_TOKEN, view(), &mut out);
    assert!(
        !out.drain().any(|a| matches!(a, Action::DeclareDead(_))),
        "no detector, no declarations"
    );
}
