//! Property-based tests for workload generation, on the in-tree `check`
//! harness.

use realtor_simcore::prelude::*;
use realtor_simcore::{prop_assert, prop_assert_eq};
use realtor_workload::{ArrivalProcess, SizeDistribution, Trace, WorkloadSpec};

/// Arrival generators produce strictly increasing times for every
/// process shape and seed.
#[test]
fn arrivals_strictly_increase() {
    forall(
        "arrivals_strictly_increase",
        0x304B01,
        128,
        |r| (gen::any_u64(r), gen::u8_in(r, 0, 3)),
        |&(seed, which)| {
            let process = match which {
                0 => ArrivalProcess::Poisson { rate: 3.0 },
                1 => ArrivalProcess::Deterministic { rate: 2.0 },
                _ => ArrivalProcess::Mmpp {
                    calm_rate: 1.0,
                    burst_rate: 15.0,
                    mean_calm_secs: 3.0,
                    mean_burst_secs: 1.0,
                },
            };
            let mut g = process.generator(SimRng::stream(seed, "prop-arrivals"));
            let mut t = SimTime::ZERO;
            for _ in 0..500 {
                let next = g.next_after(t);
                prop_assert!(next > t);
                t = next;
            }
            Ok(())
        },
    );
}

/// Generated traces are sorted, in-range, positive-sized, and
/// deterministic in the spec.
#[test]
fn traces_are_well_formed() {
    forall(
        "traces_are_well_formed",
        0x304B02,
        64,
        |r| {
            (
                gen::f64_in(r, 0.5, 12.0),
                gen::usize_in(r, 1, 50),
                gen::u64_in(r, 0, 10_000),
            )
        },
        |&(lambda, nodes, seed)| {
            let spec = WorkloadSpec::paper(lambda, nodes, SimTime::from_secs(50), seed);
            let a = spec.generate();
            let b = spec.generate();
            prop_assert_eq!(&a, &b, "generation must be deterministic");
            for w in a.records.windows(2) {
                prop_assert!(w[1].at >= w[0].at);
            }
            for r in &a.records {
                prop_assert!(r.node < nodes);
                prop_assert!(r.size_secs > 0.0);
                prop_assert!(r.at <= SimTime::from_secs(50));
            }
            Ok(())
        },
    );
}

/// Text round-trip preserves every record to format precision.
#[test]
fn trace_text_round_trip() {
    forall(
        "trace_text_round_trip",
        0x304B03,
        64,
        |r| (gen::f64_in(r, 1.0, 8.0), gen::u64_in(r, 0, 1_000)),
        |&(lambda, seed)| {
            let spec = WorkloadSpec::paper(lambda, 10, SimTime::from_secs(20), seed);
            let t = spec.generate();
            let parsed = Trace::from_text(&t.to_text()).unwrap();
            prop_assert_eq!(t.len(), parsed.len());
            for (a, b) in t.records.iter().zip(parsed.records.iter()) {
                prop_assert_eq!(a.node, b.node);
                prop_assert!((a.at.as_secs_f64() - b.at.as_secs_f64()).abs() < 1e-6);
                prop_assert!((a.size_secs - b.size_secs).abs() < 1e-6);
            }
            Ok(())
        },
    );
}

/// Every size distribution produces positive finite samples.
#[test]
fn sizes_positive() {
    forall(
        "sizes_positive",
        0x304B04,
        128,
        |r| (gen::any_u64(r), gen::u8_in(r, 0, 3)),
        |&(seed, which)| {
            let dist = match which {
                0 => SizeDistribution::paper(),
                1 => SizeDistribution::Constant { secs: 3.25 },
                _ => SizeDistribution::BoundedPareto {
                    min_secs: 0.5,
                    shape: 1.5,
                    cap_secs: 80.0,
                },
            };
            let mut rng = SimRng::stream(seed, "prop-sizes");
            for _ in 0..200 {
                let s = dist.sample(&mut rng);
                prop_assert!(s > 0.0 && s.is_finite());
            }
            Ok(())
        },
    );
}

/// Changing only the size distribution leaves arrival instants and node
/// assignments untouched (independent RNG streams).
#[test]
fn size_changes_do_not_perturb_arrivals() {
    forall(
        "size_changes_do_not_perturb_arrivals",
        0x304B05,
        64,
        |r| gen::u64_in(r, 0, 10_000),
        |&seed| {
            let mut a_spec = WorkloadSpec::paper(4.0, 25, SimTime::from_secs(30), seed);
            let b_spec = a_spec.clone();
            a_spec.sizes = SizeDistribution::Constant { secs: 1.0 };
            let a = a_spec.generate();
            let b = b_spec.generate();
            prop_assert_eq!(a.len(), b.len());
            for (ra, rb) in a.records.iter().zip(b.records.iter()) {
                prop_assert_eq!(ra.at, rb.at);
                prop_assert_eq!(ra.node, rb.node);
            }
            Ok(())
        },
    );
}
