//! Continuous churn — sustained node replacement, not one-shot strikes.
//!
//! The paper's survivability evaluation is a scripted strike-and-recover;
//! peer-to-peer reality is *churn*: a constant fraction of the population
//! is replaced every round (Augustine et al., "Distributed Agreement in
//! Dynamic Peer-to-Peer Networks"). [`ChurnProcess`] reproduces that
//! regime deterministically: every `interval` it restores the previous
//! wave's victims (amnesiac — they rejoin with empty soft state) and
//! kills a fresh `fraction` of the population, drawn from a dedicated
//! RNG stream split off the scenario seed via [`child_seed`], so enabling
//! churn never perturbs any other stream.

use realtor_simcore::rng::child_seed;
use realtor_simcore::{SimDuration, SimRng, SimTime};

/// Why a [`ChurnConfig`] was rejected by [`ChurnConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnConfigError {
    /// `fraction` outside `(0, 1]`.
    FractionOutOfRange {
        /// The offending fraction.
        fraction: f64,
    },
    /// `interval` is zero.
    ZeroInterval,
    /// `start >= end` — the churn window is empty.
    EmptyWindow {
        /// Configured window start.
        start: SimTime,
        /// Configured window end.
        end: SimTime,
    },
    /// The window ends at or past the horizon, so waves near the end would
    /// never be restored.
    WindowPastHorizon {
        /// Configured window end.
        end: SimTime,
        /// The simulation horizon.
        horizon: SimTime,
    },
}

impl std::fmt::Display for ChurnConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnConfigError::FractionOutOfRange { fraction } => {
                write!(f, "churn fraction {fraction} must be in (0, 1]")
            }
            ChurnConfigError::ZeroInterval => write!(f, "churn interval must be positive"),
            ChurnConfigError::EmptyWindow { start, end } => {
                write!(f, "churn window [{start}, {end}) is empty")
            }
            ChurnConfigError::WindowPastHorizon { end, horizon } => write!(
                f,
                "churn window ends at t={end}, at or past the horizon {horizon}"
            ),
        }
    }
}

impl std::error::Error for ChurnConfigError {}

/// A continuous-churn regime: every `interval` inside `[start, end)`,
/// `fraction` of the node population is killed and the previous wave is
/// restored (amnesiac).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Fraction of the population replaced per wave, in `(0, 1]`.
    pub fraction: f64,
    /// Time between waves.
    pub interval: SimDuration,
    /// First wave fires at this instant.
    pub start: SimTime,
    /// No wave fires at or after this instant (the final restore does).
    pub end: SimTime,
}

impl ChurnConfig {
    /// Churn `fraction` of the population every `interval` over
    /// `[start, end)`.
    pub fn new(fraction: f64, interval: SimDuration, start: SimTime, end: SimTime) -> Self {
        ChurnConfig {
            fraction,
            interval,
            start,
            end,
        }
    }

    /// Check the regime against a simulation horizon.
    pub fn validate(&self, horizon: SimTime) -> Result<(), ChurnConfigError> {
        if !(self.fraction > 0.0 && self.fraction <= 1.0) {
            return Err(ChurnConfigError::FractionOutOfRange {
                fraction: self.fraction,
            });
        }
        if self.interval == SimDuration::ZERO {
            return Err(ChurnConfigError::ZeroInterval);
        }
        if self.start >= self.end {
            return Err(ChurnConfigError::EmptyWindow {
                start: self.start,
                end: self.end,
            });
        }
        if self.end >= horizon {
            return Err(ChurnConfigError::WindowPastHorizon {
                end: self.end,
                horizon,
            });
        }
        Ok(())
    }

    /// Victims per wave on a population of `node_count` (at least 1).
    pub fn wave_size(&self, node_count: usize) -> usize {
        (((node_count as f64) * self.fraction).round() as usize).max(1)
    }
}

/// Stateful churn driver: owns the victim RNG stream and remembers the
/// in-flight wave so the next tick can restore it.
///
/// The stream is `stream(child_seed(seed, "churn"), "churn-victims")` —
/// coordinate-based, so it is identical regardless of which other streams
/// the scenario consumes, and consuming it perturbs nothing else.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    config: ChurnConfig,
    rng: SimRng,
    pending_restore: Vec<usize>,
}

impl ChurnProcess {
    /// A churn driver for `config`, seeded from the scenario seed.
    pub fn new(config: ChurnConfig, seed: u64) -> Self {
        ChurnProcess {
            config,
            rng: SimRng::stream(child_seed(seed, "churn"), "churn-victims"),
            pending_restore: Vec::new(),
        }
    }

    /// The configured regime.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// The instant of the first wave.
    pub fn first_wave(&self) -> SimTime {
        self.config.start
    }

    /// The wave after one at `now`, or `None` when the window is over (the
    /// caller should then restore the last wave via
    /// [`ChurnProcess::take_restores`]).
    pub fn next_wave(&self, now: SimTime) -> Option<SimTime> {
        let next = now + self.config.interval;
        (next < self.config.end).then_some(next)
    }

    /// Run one wave: restore the previous victims, then draw a fresh wave
    /// from the candidate pool (`alive_after_restore` must reflect the
    /// restores already applied). The fresh victims are remembered for the
    /// next tick.
    pub fn tick(&mut self, alive_after_restore: &[usize], node_count: usize) -> Vec<usize> {
        let want = self.config.wave_size(node_count).min(alive_after_restore.len());
        let kill: Vec<usize> = self
            .rng
            .sample_indices(alive_after_restore.len(), want)
            .into_iter()
            .map(|i| alive_after_restore[i])
            .collect();
        self.pending_restore = kill.clone();
        kill
    }

    /// Take the victims of the previous wave (empties the pending set).
    pub fn take_restores(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.pending_restore)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChurnConfig {
        ChurnConfig::new(
            0.2,
            SimDuration::from_secs(10),
            SimTime::from_secs(100),
            SimTime::from_secs(200),
        )
    }

    #[test]
    fn validate_accepts_sane_config() {
        assert_eq!(cfg().validate(SimTime::from_secs(300)), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_fraction_interval_window() {
        let mut c = cfg();
        c.fraction = 0.0;
        assert!(matches!(
            c.validate(SimTime::from_secs(300)),
            Err(ChurnConfigError::FractionOutOfRange { .. })
        ));
        let mut c = cfg();
        c.fraction = 1.5;
        assert!(c.validate(SimTime::from_secs(300)).is_err());
        let mut c = cfg();
        c.interval = SimDuration::ZERO;
        assert_eq!(
            c.validate(SimTime::from_secs(300)),
            Err(ChurnConfigError::ZeroInterval)
        );
        let mut c = cfg();
        c.end = c.start;
        assert!(matches!(
            c.validate(SimTime::from_secs(300)),
            Err(ChurnConfigError::EmptyWindow { .. })
        ));
        assert!(matches!(
            cfg().validate(SimTime::from_secs(150)),
            Err(ChurnConfigError::WindowPastHorizon { .. })
        ));
    }

    #[test]
    fn wave_size_rounds_and_floors_at_one() {
        assert_eq!(cfg().wave_size(25), 5);
        let mut c = cfg();
        c.fraction = 0.01;
        assert_eq!(c.wave_size(25), 1, "tiny fractions still churn someone");
        c.fraction = 1.0;
        assert_eq!(c.wave_size(25), 25);
    }

    #[test]
    fn waves_step_by_interval_until_window_end() {
        let p = ChurnProcess::new(cfg(), 42);
        assert_eq!(p.first_wave(), SimTime::from_secs(100));
        assert_eq!(
            p.next_wave(SimTime::from_secs(100)),
            Some(SimTime::from_secs(110))
        );
        assert_eq!(p.next_wave(SimTime::from_secs(190)), None);
    }

    #[test]
    fn tick_remembers_victims_for_restore() {
        let mut p = ChurnProcess::new(cfg(), 42);
        let alive: Vec<usize> = (0..25).collect();
        let wave1 = p.tick(&alive, 25);
        assert_eq!(wave1.len(), 5);
        assert_eq!(p.take_restores(), wave1);
        assert!(p.take_restores().is_empty(), "restores drain once");
    }

    #[test]
    fn victim_stream_is_deterministic_and_seed_sensitive() {
        let alive: Vec<usize> = (0..25).collect();
        let mut a = ChurnProcess::new(cfg(), 42);
        let mut b = ChurnProcess::new(cfg(), 42);
        let mut c = ChurnProcess::new(cfg(), 43);
        assert_eq!(a.tick(&alive, 25), b.tick(&alive, 25));
        assert_ne!(a.tick(&alive, 25), c.tick(&alive, 25));
    }

    #[test]
    fn tick_caps_at_candidate_pool() {
        let mut p = ChurnProcess::new(cfg(), 42);
        let alive: Vec<usize> = vec![3, 7];
        assert!(p.tick(&alive, 25).len() <= 2);
    }
}
