//! # realtor-workload — workload generation
//!
//! * [`arrival`] — Poisson (the paper's process), deterministic and MMPP
//!   arrival processes, plus flash-crowd/diurnal modulation by thinning,
//! * [`sizes`] — exponential (the paper's, mean 5 s), constant and bounded
//!   Pareto task-size distributions,
//! * [`trace`] — pre-generated, replayable task traces so all protocols see
//!   the identical workload (paired comparison),
//! * [`attack`] — scripted node-failure scenarios for the survivability
//!   ablations,
//! * [`churn`] — continuous node-replacement regimes (kill + amnesiac
//!   restore every interval) on a dedicated seed-split RNG stream.

#![warn(missing_docs)]

pub mod arrival;
pub mod attack;
pub mod churn;
pub mod sizes;
pub mod trace;

pub use arrival::{ArrivalProcess, Modulation};
pub use attack::{AttackAction, AttackEvent, AttackScenario, AttackScenarioError};
pub use churn::{ChurnConfig, ChurnConfigError, ChurnProcess};
pub use sizes::SizeDistribution;
pub use trace::{TaskRecord, Trace, WorkloadSpec};
