//! Attack scenarios — scripted node failures and recoveries over the run.
//!
//! The paper motivates REALTOR with survivability under "emergencies like
//! external attack, malfunction, or lack of resources" but evaluates only
//! steady load; the attack ablation (DESIGN.md A4) replays scripted
//! [`AttackEvent`]s against the simulator's fault state to quantify the
//! "works well in highly adverse environments" claim.

use realtor_simcore::{SimDuration, SimTime};

/// One scripted fault-injection step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackAction {
    /// Kill `count` nodes chosen by the simulator's targeting strategy.
    Kill {
        /// Number of victims.
        count: usize,
    },
    /// Restore every currently dead node.
    RestoreAll,
    /// Restore `count` dead nodes (lowest ids first, deterministic).
    Restore {
        /// Number of nodes to bring back.
        count: usize,
    },
    /// Sever `count` randomly chosen intact links (a network-level attack:
    /// nodes stay up but paths lengthen or partition).
    CutLinks {
        /// Number of links to sever.
        count: usize,
    },
    /// Restore every severed link.
    RestoreLinks,
}

/// A timed attack step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: AttackAction,
}

/// A full scripted scenario (sorted by time on construction).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttackScenario {
    events: Vec<AttackEvent>,
}

impl AttackScenario {
    /// No attacks — the paper's baseline condition.
    pub fn none() -> Self {
        Self::default()
    }

    /// Build from events (sorted internally by time, stable).
    pub fn new(mut events: Vec<AttackEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        AttackScenario { events }
    }

    /// The classic survivability probe: kill `count` nodes at `strike`,
    /// restore them all at `recover`.
    pub fn strike_and_recover(strike: SimTime, recover: SimTime, count: usize) -> Self {
        assert!(recover > strike);
        AttackScenario::new(vec![
            AttackEvent {
                at: strike,
                action: AttackAction::Kill { count },
            },
            AttackEvent {
                at: recover,
                action: AttackAction::RestoreAll,
            },
        ])
    }

    /// A rolling attack: every `period`, kill `per_wave` nodes and restore
    /// the previous wave, starting at `start`, for `waves` waves.
    pub fn rolling(start: SimTime, period: SimDuration, per_wave: usize, waves: usize) -> Self {
        let mut events = Vec::new();
        for w in 0..waves {
            let t = start + period * w as u64;
            if w > 0 {
                events.push(AttackEvent {
                    at: t,
                    action: AttackAction::RestoreAll,
                });
            }
            events.push(AttackEvent {
                at: t,
                action: AttackAction::Kill { count: per_wave },
            });
        }
        AttackScenario::new(events)
    }

    /// The scripted events in time order.
    pub fn events(&self) -> &[AttackEvent] {
        &self.events
    }

    /// True when the scenario injects no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sorted_by_time() {
        let s = AttackScenario::new(vec![
            AttackEvent {
                at: SimTime::from_secs(50),
                action: AttackAction::RestoreAll,
            },
            AttackEvent {
                at: SimTime::from_secs(10),
                action: AttackAction::Kill { count: 3 },
            },
        ]);
        assert_eq!(s.events()[0].at, SimTime::from_secs(10));
        assert_eq!(s.events()[1].at, SimTime::from_secs(50));
    }

    #[test]
    fn strike_and_recover_shape() {
        let s = AttackScenario::strike_and_recover(
            SimTime::from_secs(100),
            SimTime::from_secs(200),
            5,
        );
        assert_eq!(s.events().len(), 2);
        assert_eq!(
            s.events()[0].action,
            AttackAction::Kill { count: 5 }
        );
        assert_eq!(s.events()[1].action, AttackAction::RestoreAll);
    }

    #[test]
    fn rolling_waves_alternate_restore_kill() {
        let s = AttackScenario::rolling(
            SimTime::from_secs(10),
            SimDuration::from_secs(100),
            2,
            3,
        );
        // wave 0: kill; waves 1, 2: restore + kill
        assert_eq!(s.events().len(), 5);
        assert_eq!(s.events()[0].action, AttackAction::Kill { count: 2 });
        assert_eq!(s.events()[1].action, AttackAction::RestoreAll);
        assert_eq!(s.events()[1].at, SimTime::from_secs(110));
    }

    #[test]
    fn none_is_empty() {
        assert!(AttackScenario::none().is_empty());
    }
}
