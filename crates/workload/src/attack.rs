//! Attack scenarios — scripted node failures and recoveries over the run.
//!
//! The paper motivates REALTOR with survivability under "emergencies like
//! external attack, malfunction, or lack of resources" but evaluates only
//! steady load; the attack ablation (DESIGN.md A4) replays scripted
//! [`AttackEvent`]s against the simulator's fault state to quantify the
//! "works well in highly adverse environments" claim.

use realtor_simcore::{SimDuration, SimTime};

/// One scripted fault-injection step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackAction {
    /// Kill `count` nodes chosen by the simulator's targeting strategy.
    Kill {
        /// Number of victims.
        count: usize,
    },
    /// An attack *warning* followed by the strike: the victims are chosen
    /// at this event (the warning — proactive nodes can start evacuating)
    /// and killed `lead` later. Victim selection draws from the same
    /// targeting stream as [`AttackAction::Kill`], so a warned scenario and
    /// an unwarned one pick identical victims from identical seeds.
    KillAfterWarning {
        /// Number of victims.
        count: usize,
        /// Delay between the warning and the kill landing.
        lead: SimDuration,
    },
    /// Restore every currently dead node.
    RestoreAll,
    /// Restore `count` dead nodes (lowest ids first, deterministic).
    Restore {
        /// Number of nodes to bring back.
        count: usize,
    },
    /// Sever `count` randomly chosen intact links (a network-level attack:
    /// nodes stay up but paths lengthen or partition).
    CutLinks {
        /// Number of links to sever.
        count: usize,
    },
    /// Restore every severed link.
    RestoreLinks,
    /// Degrade `count` randomly chosen links: traffic crossing them suffers
    /// the scenario's degraded-link quality (loss/latency/duplication) but
    /// still flows — a jamming attack rather than a cut.
    DegradeLinks {
        /// Number of links to degrade.
        count: usize,
    },
    /// Restore every degraded link to the base channel quality.
    RestoreLinkQuality,
    /// Split the alive subgraph into `parts` contiguous components: nodes
    /// stay up but floods and unicasts cannot cross the cut until a
    /// [`AttackAction::Heal`]. Replaces any partition already in force.
    Partition {
        /// Number of components to split into (≥ 2).
        parts: usize,
    },
    /// Reconnect every link severed by the active partition.
    Heal,
}

/// Why an [`AttackScenario`] was rejected by [`AttackScenario::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackScenarioError {
    /// An event is scheduled at or past the simulation horizon and would
    /// silently never fire.
    EventPastHorizon {
        /// Index of the offending event in time order.
        index: usize,
        /// Its scheduled time.
        at: SimTime,
        /// The simulation horizon.
        horizon: SimTime,
    },
    /// A Kill/Restore count exceeds the node population.
    CountExceedsNodes {
        /// Index of the offending event in time order.
        index: usize,
        /// The requested count.
        count: usize,
        /// Nodes in the topology.
        node_count: usize,
    },
    /// A Kill is followed by a Restore/RestoreAll at the *same instant* —
    /// the order of same-time events is the scenario's insertion order, so
    /// this almost certainly means the restore was intended first (as in
    /// [`AttackScenario::rolling`]) and the script got them swapped.
    KillThenRestoreSameInstant {
        /// The shared timestamp.
        at: SimTime,
    },
    /// A Restore/RestoreAll with no Kill scheduled at or before it — a
    /// silent no-op that almost certainly means the script's times are
    /// wrong.
    RestoreBeforeKill {
        /// Index of the offending event in time order.
        index: usize,
        /// Its scheduled time.
        at: SimTime,
    },
    /// A Heal with no Partition scheduled at or before it — a silent no-op.
    HealBeforePartition {
        /// Index of the offending event in time order.
        index: usize,
        /// Its scheduled time.
        at: SimTime,
    },
    /// A Partition with an impossible component count: fewer than 2 parts
    /// splits nothing, and more parts than nodes names regions that do not
    /// exist.
    InvalidPartition {
        /// Index of the offending event in time order.
        index: usize,
        /// The requested component count.
        parts: usize,
        /// Nodes in the topology.
        node_count: usize,
    },
}

impl std::fmt::Display for AttackScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackScenarioError::EventPastHorizon { index, at, horizon } => write!(
                f,
                "attack event #{index} at t={at} is past the simulation horizon {horizon} and would never fire"
            ),
            AttackScenarioError::CountExceedsNodes {
                index,
                count,
                node_count,
            } => write!(
                f,
                "attack event #{index} targets {count} nodes but the topology has only {node_count}"
            ),
            AttackScenarioError::KillThenRestoreSameInstant { at } => write!(
                f,
                "Kill followed by Restore/RestoreAll at the same instant t={at}: same-time order is insertion order, so the restore would undo the kill — reorder the script"
            ),
            AttackScenarioError::RestoreBeforeKill { index, at } => write!(
                f,
                "attack event #{index} restores nodes at t={at} but no kill is scheduled at or before it — the restore would be a silent no-op"
            ),
            AttackScenarioError::HealBeforePartition { index, at } => write!(
                f,
                "attack event #{index} heals a partition at t={at} but no Partition is scheduled at or before it — the heal would be a silent no-op"
            ),
            AttackScenarioError::InvalidPartition {
                index,
                parts,
                node_count,
            } => write!(
                f,
                "attack event #{index} partitions the network into {parts} parts but a split needs 2..={node_count} parts on {node_count} nodes"
            ),
        }
    }
}

impl std::error::Error for AttackScenarioError {}

/// A timed attack step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: AttackAction,
}

/// A full scripted scenario (sorted by time on construction).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttackScenario {
    events: Vec<AttackEvent>,
}

impl AttackScenario {
    /// No attacks — the paper's baseline condition.
    pub fn none() -> Self {
        Self::default()
    }

    /// Build from events (sorted internally by time, stable).
    pub fn new(mut events: Vec<AttackEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        AttackScenario { events }
    }

    /// The classic survivability probe: kill `count` nodes at `strike`,
    /// restore them all at `recover`.
    pub fn strike_and_recover(strike: SimTime, recover: SimTime, count: usize) -> Self {
        assert!(recover > strike);
        AttackScenario::new(vec![
            AttackEvent {
                at: strike,
                action: AttackAction::Kill { count },
            },
            AttackEvent {
                at: recover,
                action: AttackAction::RestoreAll,
            },
        ])
    }

    /// The warned variant of [`AttackScenario::strike_and_recover`]: an
    /// attack warning fires at `warn`, the kill lands `lead` later, and
    /// everything is restored at `recover`. With the same workload seed the
    /// victims match the unwarned strike exactly (same targeting draw), so
    /// warned and unwarned runs differ only in the defence they permit.
    pub fn warned_strike_and_recover(
        warn: SimTime,
        lead: SimDuration,
        recover: SimTime,
        count: usize,
    ) -> Self {
        assert!(recover > warn + lead, "recovery must follow the strike");
        AttackScenario::new(vec![
            AttackEvent {
                at: warn,
                action: AttackAction::KillAfterWarning { count, lead },
            },
            AttackEvent {
                at: recover,
                action: AttackAction::RestoreAll,
            },
        ])
    }

    /// The partition analogue of [`AttackScenario::strike_and_recover`]:
    /// split the network into `parts` components at `cut`, reconnect at
    /// `heal`.
    pub fn partition_and_heal(cut: SimTime, heal: SimTime, parts: usize) -> Self {
        assert!(heal > cut);
        AttackScenario::new(vec![
            AttackEvent {
                at: cut,
                action: AttackAction::Partition { parts },
            },
            AttackEvent {
                at: heal,
                action: AttackAction::Heal,
            },
        ])
    }

    /// A rolling attack: every `period`, kill `per_wave` nodes and restore
    /// the previous wave, starting at `start`, for `waves` waves.
    pub fn rolling(start: SimTime, period: SimDuration, per_wave: usize, waves: usize) -> Self {
        let mut events = Vec::new();
        for w in 0..waves {
            let t = start + period * w as u64;
            if w > 0 {
                events.push(AttackEvent {
                    at: t,
                    action: AttackAction::RestoreAll,
                });
            }
            events.push(AttackEvent {
                at: t,
                action: AttackAction::Kill { count: per_wave },
            });
        }
        AttackScenario::new(events)
    }

    /// The scripted events in time order.
    pub fn events(&self) -> &[AttackEvent] {
        &self.events
    }

    /// True when the scenario injects no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check the script against a simulation horizon and node population.
    ///
    /// Rejects events that would silently never fire (`at >= horizon`),
    /// Kill/Restore counts larger than the node population, a Kill
    /// followed at the *same instant* by a Restore/RestoreAll (same-time
    /// order is insertion order, so that ordering undoes the kill — the
    /// restore-then-kill ordering used by [`AttackScenario::rolling`] is
    /// fine and stays valid), contradictory orderings that would be silent
    /// no-ops (Restore with no prior kill, Heal with no prior Partition),
    /// and partitions into an impossible number of components.
    pub fn validate(
        &self,
        horizon: SimTime,
        node_count: usize,
    ) -> Result<(), AttackScenarioError> {
        let mut kill_seen = false;
        let mut partition_seen = false;
        for (index, e) in self.events.iter().enumerate() {
            match e.action {
                AttackAction::Kill { .. } | AttackAction::KillAfterWarning { .. } => {
                    kill_seen = true;
                }
                AttackAction::Restore { .. } | AttackAction::RestoreAll if !kill_seen => {
                    return Err(AttackScenarioError::RestoreBeforeKill { index, at: e.at });
                }
                AttackAction::Partition { parts } => {
                    if parts < 2 || parts > node_count {
                        return Err(AttackScenarioError::InvalidPartition {
                            index,
                            parts,
                            node_count,
                        });
                    }
                    partition_seen = true;
                }
                AttackAction::Heal if !partition_seen => {
                    return Err(AttackScenarioError::HealBeforePartition { index, at: e.at });
                }
                _ => {}
            }
            if e.at >= horizon {
                return Err(AttackScenarioError::EventPastHorizon {
                    index,
                    at: e.at,
                    horizon,
                });
            }
            let count = match e.action {
                AttackAction::Kill { count }
                | AttackAction::KillAfterWarning { count, .. }
                | AttackAction::Restore { count } => Some(count),
                _ => None,
            };
            if let Some(count) = count {
                if count > node_count {
                    return Err(AttackScenarioError::CountExceedsNodes {
                        index,
                        count,
                        node_count,
                    });
                }
            }
            if let AttackAction::KillAfterWarning { lead, .. } = e.action {
                // The kill lands `lead` after the warning; a strike landing
                // past the horizon would silently never happen.
                if e.at + lead >= horizon {
                    return Err(AttackScenarioError::EventPastHorizon {
                        index,
                        at: e.at + lead,
                        horizon,
                    });
                }
            }
        }
        for pair in self.events.windows(2) {
            let kill_first = matches!(pair[0].action, AttackAction::Kill { .. });
            let restore_second = matches!(
                pair[1].action,
                AttackAction::Restore { .. } | AttackAction::RestoreAll
            );
            if pair[0].at == pair[1].at && kill_first && restore_second {
                return Err(AttackScenarioError::KillThenRestoreSameInstant { at: pair[0].at });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sorted_by_time() {
        let s = AttackScenario::new(vec![
            AttackEvent {
                at: SimTime::from_secs(50),
                action: AttackAction::RestoreAll,
            },
            AttackEvent {
                at: SimTime::from_secs(10),
                action: AttackAction::Kill { count: 3 },
            },
        ]);
        assert_eq!(s.events()[0].at, SimTime::from_secs(10));
        assert_eq!(s.events()[1].at, SimTime::from_secs(50));
    }

    #[test]
    fn strike_and_recover_shape() {
        let s = AttackScenario::strike_and_recover(
            SimTime::from_secs(100),
            SimTime::from_secs(200),
            5,
        );
        assert_eq!(s.events().len(), 2);
        assert_eq!(
            s.events()[0].action,
            AttackAction::Kill { count: 5 }
        );
        assert_eq!(s.events()[1].action, AttackAction::RestoreAll);
    }

    #[test]
    fn rolling_waves_alternate_restore_kill() {
        let s = AttackScenario::rolling(
            SimTime::from_secs(10),
            SimDuration::from_secs(100),
            2,
            3,
        );
        // wave 0: kill; waves 1, 2: restore + kill
        assert_eq!(s.events().len(), 5);
        assert_eq!(s.events()[0].action, AttackAction::Kill { count: 2 });
        assert_eq!(s.events()[1].action, AttackAction::RestoreAll);
        assert_eq!(s.events()[1].at, SimTime::from_secs(110));
    }

    #[test]
    fn none_is_empty() {
        assert!(AttackScenario::none().is_empty());
    }

    #[test]
    fn validate_accepts_sane_scripts() {
        let s = AttackScenario::strike_and_recover(
            SimTime::from_secs(100),
            SimTime::from_secs(200),
            5,
        );
        assert_eq!(s.validate(SimTime::from_secs(300), 25), Ok(()));
        // rolling() emits RestoreAll-then-Kill at the same instant — valid.
        let r = AttackScenario::rolling(
            SimTime::from_secs(10),
            SimDuration::from_secs(50),
            2,
            3,
        );
        assert_eq!(r.validate(SimTime::from_secs(300), 25), Ok(()));
    }

    #[test]
    fn validate_rejects_event_past_horizon() {
        let s = AttackScenario::new(vec![AttackEvent {
            at: SimTime::from_secs(500),
            action: AttackAction::Kill { count: 1 },
        }]);
        assert!(matches!(
            s.validate(SimTime::from_secs(300), 25),
            Err(AttackScenarioError::EventPastHorizon { index: 0, .. })
        ));
    }

    #[test]
    fn validate_rejects_oversized_kill() {
        let s = AttackScenario::new(vec![AttackEvent {
            at: SimTime::from_secs(10),
            action: AttackAction::Kill { count: 26 },
        }]);
        assert!(matches!(
            s.validate(SimTime::from_secs(300), 25),
            Err(AttackScenarioError::CountExceedsNodes {
                count: 26,
                node_count: 25,
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_kill_then_restore_same_instant() {
        let t = SimTime::from_secs(42);
        let s = AttackScenario::new(vec![
            AttackEvent {
                at: t,
                action: AttackAction::Kill { count: 2 },
            },
            AttackEvent {
                at: t,
                action: AttackAction::RestoreAll,
            },
        ]);
        assert_eq!(
            s.validate(SimTime::from_secs(300), 25),
            Err(AttackScenarioError::KillThenRestoreSameInstant { at: t })
        );
        let msg = s
            .validate(SimTime::from_secs(300), 25)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("same instant"), "{msg}");
    }

    #[test]
    fn warned_kill_validates_strike_time_not_warning_time() {
        let warned = |at: u64, lead: u64| {
            AttackScenario::new(vec![AttackEvent {
                at: SimTime::from_secs(at),
                action: AttackAction::KillAfterWarning {
                    count: 5,
                    lead: SimDuration::from_secs(lead),
                },
            }])
        };
        assert_eq!(warned(100, 50).validate(SimTime::from_secs(300), 25), Ok(()));
        // Warning inside the horizon but the strike lands past it.
        assert!(matches!(
            warned(250, 60).validate(SimTime::from_secs(300), 25),
            Err(AttackScenarioError::EventPastHorizon { index: 0, .. })
        ));
        let oversized = AttackScenario::new(vec![AttackEvent {
            at: SimTime::from_secs(10),
            action: AttackAction::KillAfterWarning {
                count: 26,
                lead: SimDuration::from_secs(5),
            },
        }]);
        assert!(matches!(
            oversized.validate(SimTime::from_secs(300), 25),
            Err(AttackScenarioError::CountExceedsNodes { count: 26, .. })
        ));
    }

    #[test]
    fn validate_rejects_restore_before_any_kill() {
        let s = AttackScenario::new(vec![AttackEvent {
            at: SimTime::from_secs(50),
            action: AttackAction::RestoreAll,
        }]);
        assert!(matches!(
            s.validate(SimTime::from_secs(300), 25),
            Err(AttackScenarioError::RestoreBeforeKill { index: 0, .. })
        ));
        // Restore *after* a kill (even a warned one) stays valid.
        let ok = AttackScenario::new(vec![
            AttackEvent {
                at: SimTime::from_secs(10),
                action: AttackAction::KillAfterWarning {
                    count: 2,
                    lead: SimDuration::from_secs(5),
                },
            },
            AttackEvent {
                at: SimTime::from_secs(50),
                action: AttackAction::Restore { count: 2 },
            },
        ]);
        assert_eq!(ok.validate(SimTime::from_secs(300), 25), Ok(()));
    }

    #[test]
    fn validate_rejects_heal_before_partition() {
        let s = AttackScenario::new(vec![AttackEvent {
            at: SimTime::from_secs(50),
            action: AttackAction::Heal,
        }]);
        assert!(matches!(
            s.validate(SimTime::from_secs(300), 25),
            Err(AttackScenarioError::HealBeforePartition { index: 0, .. })
        ));
        let ok = AttackScenario::partition_and_heal(
            SimTime::from_secs(40),
            SimTime::from_secs(70),
            2,
        );
        assert_eq!(ok.validate(SimTime::from_secs(300), 25), Ok(()));
    }

    #[test]
    fn validate_rejects_impossible_partitions() {
        let part = |parts: usize| {
            AttackScenario::new(vec![AttackEvent {
                at: SimTime::from_secs(10),
                action: AttackAction::Partition { parts },
            }])
        };
        assert!(matches!(
            part(1).validate(SimTime::from_secs(300), 25),
            Err(AttackScenarioError::InvalidPartition { parts: 1, .. })
        ));
        assert!(matches!(
            part(26).validate(SimTime::from_secs(300), 25),
            Err(AttackScenarioError::InvalidPartition {
                parts: 26,
                node_count: 25,
                ..
            })
        ));
        assert_eq!(part(2).validate(SimTime::from_secs(300), 25), Ok(()));
        let msg = part(26)
            .validate(SimTime::from_secs(300), 25)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("26 parts"), "{msg}");
    }

    #[test]
    fn degrade_actions_roundtrip() {
        let s = AttackScenario::new(vec![
            AttackEvent {
                at: SimTime::from_secs(10),
                action: AttackAction::DegradeLinks { count: 4 },
            },
            AttackEvent {
                at: SimTime::from_secs(20),
                action: AttackAction::RestoreLinkQuality,
            },
        ]);
        assert_eq!(s.validate(SimTime::from_secs(30), 25), Ok(()));
        assert_eq!(
            s.events()[0].action,
            AttackAction::DegradeLinks { count: 4 }
        );
    }
}
