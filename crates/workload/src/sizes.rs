//! Task-size distributions.
//!
//! The paper: *"We generate tasks with exponentially distributed lengths of
//! a mean value. […] Task lengths are defined in seconds with a mean value
//! of 5."* Pareto and constant sizes serve the heavy-tail and calibration
//! ablations.

use realtor_simcore::SimRng;

/// A task-size (service demand) distribution, in seconds of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDistribution {
    /// Exponential with the given mean — the paper's distribution.
    Exponential {
        /// Mean size in seconds.
        mean_secs: f64,
    },
    /// Every task the same size.
    Constant {
        /// Fixed size in seconds.
        secs: f64,
    },
    /// Bounded Pareto: heavy-tailed sizes truncated at `cap_secs` (a task
    /// larger than the queue capacity could never be admitted anywhere).
    BoundedPareto {
        /// Scale (minimum size), seconds.
        min_secs: f64,
        /// Shape parameter (smaller = heavier tail).
        shape: f64,
        /// Truncation cap, seconds.
        cap_secs: f64,
    },
}

impl SizeDistribution {
    /// The paper's task-size distribution (exponential, mean 5 s).
    pub fn paper() -> Self {
        SizeDistribution::Exponential { mean_secs: 5.0 }
    }

    /// Draw one size.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            SizeDistribution::Exponential { mean_secs } => rng.exp(mean_secs),
            SizeDistribution::Constant { secs } => secs,
            SizeDistribution::BoundedPareto {
                min_secs,
                shape,
                cap_secs,
            } => rng.pareto(min_secs, shape).min(cap_secs),
        }
    }

    /// Analytic mean where tractable (bounded Pareto mean uses the
    /// untruncated formula as an approximation for documentation purposes).
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDistribution::Exponential { mean_secs } => mean_secs,
            SizeDistribution::Constant { secs } => secs,
            SizeDistribution::BoundedPareto {
                min_secs, shape, ..
            } => {
                if shape > 1.0 {
                    shape * min_secs / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_distribution_mean_five() {
        let d = SizeDistribution::paper();
        assert_eq!(d.mean(), 5.0);
        let mut rng = SimRng::stream(7, "sizes");
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "empirical mean {mean}");
    }

    #[test]
    fn constant_is_constant() {
        let d = SizeDistribution::Constant { secs: 2.5 };
        let mut rng = SimRng::stream(8, "sizes");
        assert!((0..100).all(|_| d.sample(&mut rng) == 2.5));
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let d = SizeDistribution::BoundedPareto {
            min_secs: 1.0,
            shape: 1.2,
            cap_secs: 50.0,
        };
        let mut rng = SimRng::stream(9, "sizes");
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1.0..=50.0).contains(&s), "size {s} out of bounds");
        }
    }

    #[test]
    fn all_samples_positive() {
        let mut rng = SimRng::stream(10, "sizes");
        for d in [
            SizeDistribution::paper(),
            SizeDistribution::Constant { secs: 0.1 },
            SizeDistribution::BoundedPareto {
                min_secs: 0.5,
                shape: 2.0,
                cap_secs: 10.0,
            },
        ] {
            assert!((0..1000).all(|_| d.sample(&mut rng) > 0.0));
        }
    }
}
