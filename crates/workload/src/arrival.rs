//! Arrival processes.
//!
//! The paper's workload: *"The task arrival forms a Poisson process with a
//! rate of λ. The generated task is given to a node randomly selected from
//! Node 0 through Node 24."* [`ArrivalProcess::Poisson`] reproduces that;
//! MMPP and deterministic processes serve the burstiness and calibration
//! ablations.

use realtor_simcore::{SimDuration, SimRng, SimTime};

/// A stationary (or modulated) arrival process.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate` per second (exponential inter-arrivals).
    Poisson {
        /// Mean arrivals per second.
        rate: f64,
    },
    /// Deterministic arrivals every `1/rate` seconds.
    Deterministic {
        /// Arrivals per second.
        rate: f64,
    },
    /// Two-state Markov-modulated Poisson process: alternates between a
    /// `calm` and a `burst` rate with exponentially distributed sojourns.
    Mmpp {
        /// Rate while calm (per second).
        calm_rate: f64,
        /// Rate while bursting (per second).
        burst_rate: f64,
        /// Mean sojourn in the calm state (seconds).
        mean_calm_secs: f64,
        /// Mean sojourn in the burst state (seconds).
        mean_burst_secs: f64,
    },
}

impl ArrivalProcess {
    /// Long-run average arrival rate.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Deterministic { rate } => rate,
            ArrivalProcess::Mmpp {
                calm_rate,
                burst_rate,
                mean_calm_secs,
                mean_burst_secs,
            } => {
                let total = mean_calm_secs + mean_burst_secs;
                (calm_rate * mean_calm_secs + burst_rate * mean_burst_secs) / total
            }
        }
    }

    /// Create a stateful generator for this process.
    pub fn generator(&self, rng: SimRng) -> ArrivalGen {
        ArrivalGen {
            process: self.clone(),
            rng,
            in_burst: false,
            state_until: SimTime::ZERO,
        }
    }
}

/// Stateful arrival-time generator.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SimRng,
    in_burst: bool,
    state_until: SimTime,
}

impl ArrivalGen {
    /// The next arrival instant strictly after `now`.
    pub fn next_after(&mut self, now: SimTime) -> SimTime {
        match self.process {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0);
                now + SimDuration::from_secs_f64(self.rng.exp(1.0 / rate))
            }
            ArrivalProcess::Deterministic { rate } => {
                assert!(rate > 0.0);
                now + SimDuration::from_secs_f64(1.0 / rate)
            }
            ArrivalProcess::Mmpp {
                calm_rate,
                burst_rate,
                mean_calm_secs,
                mean_burst_secs,
            } => {
                // Advance the modulating chain past `now`, then draw from the
                // current state's rate. Inter-arrivals that straddle a state
                // switch are re-drawn from the switch point, which preserves
                // the per-state exponential law piecewise.
                let mut t = now;
                loop {
                    if t >= self.state_until {
                        // enter the next state
                        self.in_burst = !self.in_burst;
                        let mean = if self.in_burst {
                            mean_burst_secs
                        } else {
                            mean_calm_secs
                        };
                        self.state_until =
                            self.state_until.max(t) + SimDuration::from_secs_f64(self.rng.exp(mean));
                    }
                    let rate = if self.in_burst { burst_rate } else { calm_rate };
                    let candidate = t + SimDuration::from_secs_f64(self.rng.exp(1.0 / rate));
                    if candidate <= self.state_until {
                        return candidate;
                    }
                    t = self.state_until;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_matches() {
        let p = ArrivalProcess::Poisson { rate: 4.0 };
        let mut g = p.generator(SimRng::stream(1, "arr"));
        let mut t = SimTime::ZERO;
        let n = 40_000;
        for _ in 0..n {
            t = g.next_after(t);
        }
        let rate = n as f64 / t.as_secs_f64();
        assert!((rate - 4.0).abs() < 0.1, "empirical rate {rate}");
    }

    #[test]
    fn arrivals_strictly_increase() {
        for p in [
            ArrivalProcess::Poisson { rate: 10.0 },
            ArrivalProcess::Deterministic { rate: 3.0 },
            ArrivalProcess::Mmpp {
                calm_rate: 1.0,
                burst_rate: 20.0,
                mean_calm_secs: 5.0,
                mean_burst_secs: 1.0,
            },
        ] {
            let mut g = p.generator(SimRng::stream(2, "arr"));
            let mut t = SimTime::ZERO;
            for _ in 0..5_000 {
                let next = g.next_after(t);
                assert!(next > t, "{p:?} produced non-increasing arrival");
                t = next;
            }
        }
    }

    #[test]
    fn deterministic_is_evenly_spaced() {
        let p = ArrivalProcess::Deterministic { rate: 2.0 };
        let mut g = p.generator(SimRng::stream(3, "arr"));
        let t1 = g.next_after(SimTime::ZERO);
        let t2 = g.next_after(t1);
        assert_eq!(t1, SimTime::from_secs_f64(0.5));
        assert_eq!(t2, SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn mmpp_mean_rate_formula() {
        let p = ArrivalProcess::Mmpp {
            calm_rate: 2.0,
            burst_rate: 10.0,
            mean_calm_secs: 8.0,
            mean_burst_secs: 2.0,
        };
        // (2*8 + 10*2) / 10 = 3.6
        assert!((p.mean_rate() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn mmpp_empirical_rate_close_to_mean() {
        let p = ArrivalProcess::Mmpp {
            calm_rate: 1.0,
            burst_rate: 9.0,
            mean_calm_secs: 4.0,
            mean_burst_secs: 4.0,
        };
        let mut g = p.generator(SimRng::stream(4, "arr"));
        let mut t = SimTime::ZERO;
        let n = 60_000;
        for _ in 0..n {
            t = g.next_after(t);
        }
        let rate = n as f64 / t.as_secs_f64();
        assert!((rate - p.mean_rate()).abs() < 0.3, "empirical {rate}");
    }
}
