//! Arrival processes.
//!
//! The paper's workload: *"The task arrival forms a Poisson process with a
//! rate of λ. The generated task is given to a node randomly selected from
//! Node 0 through Node 24."* [`ArrivalProcess::Poisson`] reproduces that;
//! MMPP and deterministic processes serve the burstiness and calibration
//! ablations.

use realtor_simcore::{SimDuration, SimRng, SimTime};

/// A stationary (or modulated) arrival process.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate` per second (exponential inter-arrivals).
    Poisson {
        /// Mean arrivals per second.
        rate: f64,
    },
    /// Deterministic arrivals every `1/rate` seconds.
    Deterministic {
        /// Arrivals per second.
        rate: f64,
    },
    /// Two-state Markov-modulated Poisson process: alternates between a
    /// `calm` and a `burst` rate with exponentially distributed sojourns.
    Mmpp {
        /// Rate while calm (per second).
        calm_rate: f64,
        /// Rate while bursting (per second).
        burst_rate: f64,
        /// Mean sojourn in the calm state (seconds).
        mean_calm_secs: f64,
        /// Mean sojourn in the burst state (seconds).
        mean_burst_secs: f64,
    },
    /// A base process whose instantaneous rate is scaled by a deterministic
    /// time-varying factor (flash crowds, diurnal cycles), realised by
    /// Lewis–Shedler thinning: candidates are drawn from the base process
    /// sped up to the factor's peak, then accepted with probability
    /// `factor(t) / max_factor`. Nesting `Modulated` is rejected.
    Modulated {
        /// The stationary process being modulated.
        base: Box<ArrivalProcess>,
        /// The deterministic rate envelope.
        modulation: Modulation,
    },
}

/// A deterministic time-varying rate envelope for
/// [`ArrivalProcess::Modulated`].
#[derive(Debug, Clone, PartialEq)]
pub enum Modulation {
    /// A transient surge: the rate is multiplied by `multiplier` over
    /// `[at, at + duration)` and is unchanged elsewhere.
    FlashCrowd {
        /// Rate multiplier during the surge (> 0; > 1 for a crowd, < 1
        /// models a brown-out).
        multiplier: f64,
        /// Surge onset.
        at: SimTime,
        /// Surge length.
        duration: SimDuration,
    },
    /// A sinusoidal day/night cycle: the rate is scaled by
    /// `1 + amplitude * sin(2πt / period_secs)`, `amplitude` in `[0, 1]`.
    Diurnal {
        /// Peak deviation from the mean rate, in `[0, 1]`.
        amplitude: f64,
        /// Cycle length in seconds (> 0).
        period_secs: f64,
    },
}

impl Modulation {
    /// The rate factor at instant `t`.
    pub fn factor(&self, t: SimTime) -> f64 {
        match *self {
            Modulation::FlashCrowd {
                multiplier,
                at,
                duration,
            } => {
                if t >= at && t < at + duration {
                    multiplier
                } else {
                    1.0
                }
            }
            Modulation::Diurnal {
                amplitude,
                period_secs,
            } => {
                let phase = 2.0 * std::f64::consts::PI * t.as_secs_f64() / period_secs;
                1.0 + amplitude * phase.sin()
            }
        }
    }

    /// The factor's supremum — the thinning envelope.
    pub fn max_factor(&self) -> f64 {
        match *self {
            Modulation::FlashCrowd { multiplier, .. } => multiplier.max(1.0),
            Modulation::Diurnal { amplitude, .. } => 1.0 + amplitude,
        }
    }

    fn assert_valid(&self) {
        match *self {
            Modulation::FlashCrowd { multiplier, .. } => {
                assert!(multiplier > 0.0, "flash-crowd multiplier must be positive");
            }
            Modulation::Diurnal {
                amplitude,
                period_secs,
            } => {
                assert!(
                    (0.0..=1.0).contains(&amplitude),
                    "diurnal amplitude must be in [0, 1]"
                );
                assert!(period_secs > 0.0, "diurnal period must be positive");
            }
        }
    }
}

impl ArrivalProcess {
    /// Long-run average arrival rate.
    ///
    /// Modulated processes report their base rate: the flash crowd is
    /// transient and the diurnal sinusoid averages out, so the long-run
    /// factor is 1 in both cases.
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Deterministic { rate } => *rate,
            ArrivalProcess::Mmpp {
                calm_rate,
                burst_rate,
                mean_calm_secs,
                mean_burst_secs,
            } => {
                let total = mean_calm_secs + mean_burst_secs;
                (calm_rate * mean_calm_secs + burst_rate * mean_burst_secs) / total
            }
            ArrivalProcess::Modulated { base, .. } => base.mean_rate(),
        }
    }

    /// Create a stateful generator for this process.
    ///
    /// Panics on a nested `Modulated` or an out-of-range modulation —
    /// misconfiguration, caught at construction rather than mid-run.
    pub fn generator(&self, rng: SimRng) -> ArrivalGen {
        let (base, modulation) = match self {
            ArrivalProcess::Modulated { base, modulation } => {
                assert!(
                    !matches!(**base, ArrivalProcess::Modulated { .. }),
                    "nested Modulated arrival processes are not supported"
                );
                modulation.assert_valid();
                ((**base).clone(), Some(modulation.clone()))
            }
            other => (other.clone(), None),
        };
        ArrivalGen {
            process: base,
            modulation,
            rng,
            in_burst: false,
            state_until: SimTime::ZERO,
        }
    }
}

/// Stateful arrival-time generator.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    /// The base (never `Modulated`) process.
    process: ArrivalProcess,
    /// The rate envelope, when thinning is active.
    modulation: Option<Modulation>,
    rng: SimRng,
    in_burst: bool,
    state_until: SimTime,
}

impl ArrivalGen {
    /// The next arrival instant strictly after `now`.
    pub fn next_after(&mut self, now: SimTime) -> SimTime {
        let Some(modulation) = self.modulation.clone() else {
            return self.base_next_after(now, 1.0);
        };
        // Lewis–Shedler thinning: candidates from the base process sped up
        // to the envelope's peak, each kept with probability
        // factor(candidate) / max_factor. Rejected candidates advance the
        // clock, so the accepted stream has instantaneous rate
        // base_rate(t) * factor(t).
        let max_factor = modulation.max_factor();
        let mut t = now;
        loop {
            let candidate = self.base_next_after(t, max_factor);
            if self.rng.f64() < modulation.factor(candidate) / max_factor {
                return candidate;
            }
            t = candidate;
        }
    }

    /// One draw from the base process with every rate scaled by `scale`.
    fn base_next_after(&mut self, now: SimTime, scale: f64) -> SimTime {
        match self.process {
            ArrivalProcess::Poisson { rate } => {
                let rate = rate * scale;
                assert!(rate > 0.0);
                now + SimDuration::from_secs_f64(self.rng.exp(1.0 / rate))
            }
            ArrivalProcess::Deterministic { rate } => {
                let rate = rate * scale;
                assert!(rate > 0.0);
                now + SimDuration::from_secs_f64(1.0 / rate)
            }
            ArrivalProcess::Mmpp {
                calm_rate,
                burst_rate,
                mean_calm_secs,
                mean_burst_secs,
            } => {
                // Advance the modulating chain past `now`, then draw from the
                // current state's rate. Inter-arrivals that straddle a state
                // switch are re-drawn from the switch point, which preserves
                // the per-state exponential law piecewise.
                let mut t = now;
                loop {
                    if t >= self.state_until {
                        // enter the next state
                        self.in_burst = !self.in_burst;
                        let mean = if self.in_burst {
                            mean_burst_secs
                        } else {
                            mean_calm_secs
                        };
                        self.state_until =
                            self.state_until.max(t) + SimDuration::from_secs_f64(self.rng.exp(mean));
                    }
                    let rate = scale * if self.in_burst { burst_rate } else { calm_rate };
                    let candidate = t + SimDuration::from_secs_f64(self.rng.exp(1.0 / rate));
                    if candidate <= self.state_until {
                        return candidate;
                    }
                    t = self.state_until;
                }
            }
            ArrivalProcess::Modulated { .. } => {
                unreachable!("generator() unwraps Modulated into base + envelope")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_matches() {
        let p = ArrivalProcess::Poisson { rate: 4.0 };
        let mut g = p.generator(SimRng::stream(1, "arr"));
        let mut t = SimTime::ZERO;
        let n = 40_000;
        for _ in 0..n {
            t = g.next_after(t);
        }
        let rate = n as f64 / t.as_secs_f64();
        assert!((rate - 4.0).abs() < 0.1, "empirical rate {rate}");
    }

    #[test]
    fn arrivals_strictly_increase() {
        for p in [
            ArrivalProcess::Poisson { rate: 10.0 },
            ArrivalProcess::Deterministic { rate: 3.0 },
            ArrivalProcess::Mmpp {
                calm_rate: 1.0,
                burst_rate: 20.0,
                mean_calm_secs: 5.0,
                mean_burst_secs: 1.0,
            },
        ] {
            let mut g = p.generator(SimRng::stream(2, "arr"));
            let mut t = SimTime::ZERO;
            for _ in 0..5_000 {
                let next = g.next_after(t);
                assert!(next > t, "{p:?} produced non-increasing arrival");
                t = next;
            }
        }
    }

    #[test]
    fn deterministic_is_evenly_spaced() {
        let p = ArrivalProcess::Deterministic { rate: 2.0 };
        let mut g = p.generator(SimRng::stream(3, "arr"));
        let t1 = g.next_after(SimTime::ZERO);
        let t2 = g.next_after(t1);
        assert_eq!(t1, SimTime::from_secs_f64(0.5));
        assert_eq!(t2, SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn mmpp_mean_rate_formula() {
        let p = ArrivalProcess::Mmpp {
            calm_rate: 2.0,
            burst_rate: 10.0,
            mean_calm_secs: 8.0,
            mean_burst_secs: 2.0,
        };
        // (2*8 + 10*2) / 10 = 3.6
        assert!((p.mean_rate() - 3.6).abs() < 1e-12);
    }

    fn count_in(times: &[SimTime], lo: f64, hi: f64) -> usize {
        times
            .iter()
            .filter(|t| t.as_secs_f64() >= lo && t.as_secs_f64() < hi)
            .count()
    }

    #[test]
    fn flash_crowd_surges_inside_window_only() {
        let p = ArrivalProcess::Modulated {
            base: Box::new(ArrivalProcess::Poisson { rate: 5.0 }),
            modulation: Modulation::FlashCrowd {
                multiplier: 4.0,
                at: SimTime::from_secs(100),
                duration: SimDuration::from_secs(100),
            },
        };
        assert_eq!(p.mean_rate(), 5.0);
        let mut g = p.generator(SimRng::stream(5, "arr"));
        let mut t = SimTime::ZERO;
        let mut times = Vec::new();
        while t < SimTime::from_secs(300) {
            t = g.next_after(t);
            times.push(t);
        }
        let before = count_in(&times, 0.0, 100.0) as f64 / 100.0;
        let during = count_in(&times, 100.0, 200.0) as f64 / 100.0;
        let after = count_in(&times, 200.0, 300.0) as f64 / 100.0;
        assert!((before - 5.0).abs() < 1.0, "pre-surge rate {before}");
        assert!((during - 20.0).abs() < 2.5, "surge rate {during}");
        assert!((after - 5.0).abs() < 1.0, "post-surge rate {after}");
    }

    #[test]
    fn diurnal_peaks_and_troughs() {
        let p = ArrivalProcess::Modulated {
            base: Box::new(ArrivalProcess::Poisson { rate: 8.0 }),
            modulation: Modulation::Diurnal {
                amplitude: 0.9,
                period_secs: 200.0,
            },
        };
        let mut g = p.generator(SimRng::stream(6, "arr"));
        let mut t = SimTime::ZERO;
        let mut times = Vec::new();
        while t < SimTime::from_secs(2_000) {
            t = g.next_after(t);
            times.push(t);
        }
        // First quarter-cycle (sin > 0) vs third (sin < 0), averaged over
        // all ten periods.
        let mut peak = 0;
        let mut trough = 0;
        for cycle in 0..10 {
            let base = cycle as f64 * 200.0;
            peak += count_in(&times, base, base + 100.0);
            trough += count_in(&times, base + 100.0, base + 200.0);
        }
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "day half {peak} should far exceed night half {trough}"
        );
        // Long-run average still tracks the base rate.
        let rate = times.len() as f64 / 2_000.0;
        assert!((rate - 8.0).abs() < 0.5, "long-run rate {rate}");
    }

    #[test]
    fn modulated_arrivals_strictly_increase_and_are_deterministic() {
        let p = ArrivalProcess::Modulated {
            base: Box::new(ArrivalProcess::Mmpp {
                calm_rate: 2.0,
                burst_rate: 12.0,
                mean_calm_secs: 5.0,
                mean_burst_secs: 2.0,
            }),
            modulation: Modulation::Diurnal {
                amplitude: 0.5,
                period_secs: 60.0,
            },
        };
        let mut a = p.generator(SimRng::stream(7, "arr"));
        let mut b = p.generator(SimRng::stream(7, "arr"));
        let mut t = SimTime::ZERO;
        for _ in 0..5_000 {
            let next = a.next_after(t);
            assert!(next > t);
            assert_eq!(next, b.next_after(t), "same seed must replay exactly");
            t = next;
        }
    }

    #[test]
    #[should_panic(expected = "nested Modulated")]
    fn nested_modulation_is_rejected() {
        let inner = ArrivalProcess::Modulated {
            base: Box::new(ArrivalProcess::Poisson { rate: 1.0 }),
            modulation: Modulation::Diurnal {
                amplitude: 0.1,
                period_secs: 10.0,
            },
        };
        let outer = ArrivalProcess::Modulated {
            base: Box::new(inner),
            modulation: Modulation::Diurnal {
                amplitude: 0.1,
                period_secs: 10.0,
            },
        };
        let _ = outer.generator(SimRng::stream(8, "arr"));
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn out_of_range_amplitude_is_rejected() {
        let p = ArrivalProcess::Modulated {
            base: Box::new(ArrivalProcess::Poisson { rate: 1.0 }),
            modulation: Modulation::Diurnal {
                amplitude: 1.5,
                period_secs: 10.0,
            },
        };
        let _ = p.generator(SimRng::stream(9, "arr"));
    }

    #[test]
    fn mmpp_empirical_rate_close_to_mean() {
        let p = ArrivalProcess::Mmpp {
            calm_rate: 1.0,
            burst_rate: 9.0,
            mean_calm_secs: 4.0,
            mean_burst_secs: 4.0,
        };
        let mut g = p.generator(SimRng::stream(4, "arr"));
        let mut t = SimTime::ZERO;
        let n = 60_000;
        for _ in 0..n {
            t = g.next_after(t);
        }
        let rate = n as f64 / t.as_secs_f64();
        assert!((rate - p.mean_rate()).abs() < 0.3, "empirical {rate}");
    }
}
