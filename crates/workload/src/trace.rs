//! Workload traces: pre-generated arrival sequences that can be recorded,
//! saved and replayed.
//!
//! A trace fixes the complete randomness of a run's workload, which is what
//! makes protocol comparisons *paired*: all five protocols in Figures 5–8
//! face the identical task sequence. The on-disk format is a trivial
//! `time_secs node size_secs` line format (no extra dependency needed).

use crate::arrival::ArrivalProcess;
use crate::sizes::SizeDistribution;
use realtor_simcore::{SimRng, SimTime};

/// One task arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRecord {
    /// Arrival instant.
    pub at: SimTime,
    /// Node the task is assigned to.
    pub node: usize,
    /// Service demand in seconds.
    pub size_secs: f64,
}

/// Specification from which a trace is generated.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// The size distribution.
    pub sizes: SizeDistribution,
    /// Number of nodes tasks are scattered over (uniformly).
    pub node_count: usize,
    /// Simulation horizon: arrivals beyond this are not generated.
    pub horizon: SimTime,
    /// Master seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's Section-5 workload at arrival rate `lambda`.
    pub fn paper(lambda: f64, node_count: usize, horizon: SimTime, seed: u64) -> Self {
        WorkloadSpec {
            arrivals: ArrivalProcess::Poisson { rate: lambda },
            sizes: SizeDistribution::paper(),
            node_count,
            horizon,
            seed,
        }
    }

    /// Generate the full trace.
    ///
    /// Three independent RNG streams (arrival times, node choice, sizes)
    /// ensure that changing one dimension of the spec leaves the others'
    /// draws untouched.
    pub fn generate(&self) -> Trace {
        assert!(self.node_count > 0);
        let mut arr = self
            .arrivals
            .generator(SimRng::stream(self.seed, "workload-arrivals"));
        let mut node_rng = SimRng::stream(self.seed, "workload-nodes");
        let mut size_rng = SimRng::stream(self.seed, "workload-sizes");
        let mut records = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t = arr.next_after(t);
            if t > self.horizon {
                break;
            }
            records.push(TaskRecord {
                at: t,
                node: node_rng.index(self.node_count),
                size_secs: size_rng.sample_size(&self.sizes),
            });
        }
        Trace { records }
    }
}

/// Helper so `SimRng` stays workload-agnostic.
trait SampleSize {
    fn sample_size(&mut self, d: &SizeDistribution) -> f64;
}
impl SampleSize for SimRng {
    fn sample_size(&mut self, d: &SizeDistribution) -> f64 {
        d.sample(self)
    }
}

/// A fully materialized workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Arrivals in non-decreasing time order.
    pub records: Vec<TaskRecord>,
}

impl Trace {
    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total offered work in seconds.
    pub fn offered_work_secs(&self) -> f64 {
        self.records.iter().map(|r| r.size_secs).sum()
    }

    /// Serialize to the `time node size` line format.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 32);
        for r in &self.records {
            out.push_str(&format!(
                "{:.9} {} {:.9}\n",
                r.at.as_secs_f64(),
                r.node,
                r.size_secs
            ));
        }
        out
    }

    /// Parse the `time node size` line format. Blank lines and `#` comments
    /// are skipped.
    pub fn from_text(text: &str) -> Result<Trace, String> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let parse = |s: Option<&str>, what: &str| -> Result<f64, String> {
                s.ok_or_else(|| format!("line {}: missing {what}", i + 1))?
                    .parse::<f64>()
                    .map_err(|e| format!("line {}: bad {what}: {e}", i + 1))
            };
            let at = parse(parts.next(), "time")?;
            let node = parse(parts.next(), "node")? as usize;
            let size = parse(parts.next(), "size")?;
            if size <= 0.0 {
                return Err(format!("line {}: non-positive size", i + 1));
            }
            records.push(TaskRecord {
                at: SimTime::from_secs_f64(at),
                node,
                size_secs: size,
            });
        }
        if records.windows(2).any(|w| w[1].at < w[0].at) {
            return Err("trace not sorted by time".into());
        }
        Ok(Trace { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::paper(5.0, 25, SimTime::from_secs(100), 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().generate();
        let b = spec().generate();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn generated_trace_matches_spec_statistics() {
        let s = WorkloadSpec::paper(5.0, 25, SimTime::from_secs(2_000), 7);
        let t = s.generate();
        let rate = t.len() as f64 / 2_000.0;
        assert!((rate - 5.0).abs() < 0.2, "rate {rate}");
        let mean_size = t.offered_work_secs() / t.len() as f64;
        assert!((mean_size - 5.0).abs() < 0.2, "mean size {mean_size}");
        assert!(t.records.iter().all(|r| r.node < 25));
    }

    #[test]
    fn different_seeds_differ() {
        let mut s2 = spec();
        s2.seed = 43;
        assert_ne!(spec().generate(), s2.generate());
    }

    #[test]
    fn text_round_trip() {
        let t = spec().generate();
        let parsed = Trace::from_text(&t.to_text()).unwrap();
        assert_eq!(parsed.len(), t.len());
        for (a, b) in t.records.iter().zip(parsed.records.iter()) {
            assert_eq!(a.node, b.node);
            assert!((a.at.as_secs_f64() - b.at.as_secs_f64()).abs() < 1e-6);
            assert!((a.size_secs - b.size_secs).abs() < 1e-6);
        }
    }

    #[test]
    fn parser_skips_comments_and_rejects_garbage() {
        let t = Trace::from_text("# header\n\n1.0 3 5.0\n2.0 4 1.5\n").unwrap();
        assert_eq!(t.len(), 2);
        assert!(Trace::from_text("1.0 3\n").is_err());
        assert!(Trace::from_text("1.0 3 -2.0\n").is_err());
        assert!(Trace::from_text("5.0 1 1.0\n1.0 2 1.0\n").is_err());
    }
}
