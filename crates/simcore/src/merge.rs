//! Grid-order streamed output merging for parallel sweeps.
//!
//! Workers finish sweep cells in whatever order the scheduler dictates, but
//! result files must be **grid-order deterministic**: the bytes of a CSV or
//! JSONL artifact may depend only on the grid, never on thread timing.
//! [`OrderedMerge`] reconciles the two: each cell pushes its output chunk
//! under the cell's grid index as soon as it completes; the merge holds
//! out-of-order chunks back and appends the contiguous prefix, so the final
//! byte string equals the serial concatenation
//! `header ++ chunk[0] ++ chunk[1] ++ …` exactly — including the header row
//! and each chunk's own trailing newline (the merge inserts nothing).
//!
//! Byte-identity with the serial writers ([`Table::to_csv`]
//! (crate::table::Table::to_csv), JSONL line joins) is pinned by the tests
//! below and re-checked live by the experiment drivers.

use std::collections::BTreeMap;

/// An order-restoring streamed writer: chunks pushed by grid index in any
/// order, bytes out in index order.
#[derive(Debug)]
pub struct OrderedMerge {
    /// Completed-but-not-yet-writable chunks, keyed by grid index.
    pending: BTreeMap<usize, String>,
    /// Next grid index the output is waiting on.
    next: usize,
    /// Total number of chunks the grid will produce.
    total: usize,
    /// Merged output so far (header + contiguous prefix of chunks).
    out: String,
}

impl OrderedMerge {
    /// A merge expecting `total` chunks and no header.
    pub fn new(total: usize) -> Self {
        OrderedMerge {
            pending: BTreeMap::new(),
            next: 0,
            total,
            out: String::new(),
        }
    }

    /// A merge expecting `total` chunks, starting with a header emitted
    /// verbatim (e.g. a newline-terminated CSV header line).
    pub fn with_header(total: usize, header: &str) -> Self {
        let mut m = OrderedMerge::new(total);
        m.out.push_str(header);
        m
    }

    /// Deliver the chunk for grid index `index` (each index exactly once).
    /// Chunks are emitted verbatim: a CSV/JSONL chunk must carry its own
    /// trailing newline. Empty chunks are allowed (a cell may emit no rows).
    pub fn push(&mut self, index: usize, chunk: String) {
        assert!(
            index < self.total,
            "chunk index {index} out of range ({})",
            self.total
        );
        assert!(
            index >= self.next && !self.pending.contains_key(&index),
            "duplicate chunk for index {index}"
        );
        self.pending.insert(index, chunk);
        // Drain the contiguous prefix.
        while let Some(chunk) = self.pending.remove(&self.next) {
            self.out.push_str(&chunk);
            self.next += 1;
        }
    }

    /// Number of chunks received so far (written or held back).
    pub fn received(&self) -> usize {
        self.next + self.pending.len()
    }

    /// The merged bytes. Panics unless every chunk has arrived.
    pub fn finish(self) -> String {
        assert!(
            self.next == self.total && self.pending.is_empty(),
            "merge finished early: {}/{} chunks received",
            self.next + self.pending.len(),
            self.total
        );
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::table::{Cell, Table};

    /// Out-of-order pushes produce the same bytes as in-order pushes.
    #[test]
    fn completion_order_is_irrelevant() {
        let chunks: Vec<String> = (0..20).map(|i| format!("row-{i}\n")).collect();
        let serial: String = chunks.concat();
        // A deterministic shuffle of the completion order.
        let mut order: Vec<usize> = (0..20).collect();
        let mut rng = SimRng::from_seed(99);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.index(i + 1));
        }
        let mut m = OrderedMerge::new(20);
        for &i in &order {
            m.push(i, chunks[i].clone());
        }
        assert_eq!(m.finish(), serial);
    }

    /// Satellite guarantee: the streamed CSV path is byte-identical to the
    /// existing serial writer `Table::to_csv` on a fixed grid — header row,
    /// per-row newlines and the trailing newline included.
    #[test]
    fn csv_merge_is_byte_identical_to_serial_table_writer() {
        let mut table =
            Table::new("fixed grid", &["protocol", "lambda", "value"]).float_precision(4);
        let rows: Vec<Vec<Cell>> = (0..12)
            .map(|i| {
                vec![
                    Cell::Str(format!("proto-{}", i % 3)),
                    Cell::Float(1.0 + i as f64 / 2.0),
                    Cell::Float((i as f64).sin()),
                ]
            })
            .collect();
        for r in &rows {
            table.push_row(r.clone());
        }
        let serial = table.to_csv();

        // Stream the same rows through the merge in a scrambled order.
        let mut m = OrderedMerge::with_header(rows.len(), &table.csv_header());
        let order = [7, 0, 11, 3, 2, 1, 10, 4, 6, 5, 9, 8];
        for &i in &order {
            m.push(i, table.csv_row_of(&rows[i]));
        }
        let streamed = m.finish();
        assert_eq!(streamed, serial);
        assert!(streamed.ends_with('\n'), "CSV keeps its trailing newline");
        assert!(streamed.starts_with("protocol,lambda,value\n"));
    }

    /// JSONL: headerless merge of one-line-per-cell chunks equals the
    /// serial line join, trailing newline included.
    #[test]
    fn jsonl_merge_matches_serial_join() {
        let lines: Vec<String> = (0..6)
            .map(|i| format!("{{\"cell\":{i},\"ok\":true}}\n"))
            .collect();
        let serial: String = lines.concat();
        let mut m = OrderedMerge::new(6);
        for &i in &[5usize, 1, 0, 3, 2, 4] {
            m.push(i, lines[i].clone());
        }
        assert_eq!(m.finish(), serial);
    }

    #[test]
    fn empty_chunks_and_empty_grid() {
        let mut m = OrderedMerge::with_header(2, "a,b\n");
        m.push(1, String::new());
        m.push(0, "1,2\n".to_string());
        assert_eq!(m.finish(), "a,b\n1,2\n");
        let m = OrderedMerge::with_header(0, "a,b\n");
        assert_eq!(m.finish(), "a,b\n");
    }

    #[test]
    fn received_counts_held_back_chunks() {
        let mut m = OrderedMerge::new(3);
        m.push(2, "c\n".into());
        assert_eq!(m.received(), 1);
        m.push(0, "a\n".into());
        assert_eq!(m.received(), 2);
        m.push(1, "b\n".into());
        assert_eq!(m.received(), 3);
        assert_eq!(m.finish(), "a\nb\nc\n");
    }

    #[test]
    #[should_panic(expected = "duplicate chunk")]
    fn duplicate_index_rejected() {
        let mut m = OrderedMerge::new(2);
        m.push(0, "a\n".into());
        m.push(0, "a\n".into());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_rejected() {
        let mut m = OrderedMerge::new(2);
        m.push(2, "x\n".into());
    }

    #[test]
    #[should_panic(expected = "finished early")]
    fn missing_chunk_fails_finish() {
        let mut m = OrderedMerge::new(2);
        m.push(0, "a\n".into());
        let _ = m.finish();
    }
}
