//! Order-preserving parallel execution with an explicit worker count.
//!
//! The sweep runner's execution core: a job list fans out across `jobs`
//! OS threads through a work-stealing index counter, and results come back
//! **in input order** regardless of which worker finished which job when.
//! `jobs == 1` is a true serial fast path — no threads are spawned, jobs
//! run inline in input order — so callers can default to serial execution
//! and stay bit-exact with historical single-threaded runs by construction.
//!
//! Determinism contract: if every job is a pure function of its input (a
//! hermetic simulation cell with its own seeded `SimRng`), the returned
//! vector is byte-identical for any `jobs >= 1`. The property tests in
//! `crates/runner` enforce this end-to-end over real simulation grids.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f` over `items` on up to `jobs` worker threads, returning results
/// in input order. `jobs` must be at least 1; `jobs == 1` runs serially on
/// the calling thread.
pub fn run_ordered<J, R, F>(jobs: usize, items: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    run_ordered_observed(jobs, items, f, |_, _| {})
}

/// [`run_ordered`] with a completion observer: `on_done(completed, total)`
/// fires after each job finishes, in **completion order** (not input
/// order), from whichever thread finished the job. Use it for progress
/// reporting or streamed output merging; it must not affect the jobs
/// themselves.
pub fn run_ordered_observed<J, R, F, O>(jobs: usize, items: &[J], f: F, on_done: O) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
    O: Fn(usize, usize) + Sync,
{
    assert!(jobs >= 1, "worker count must be at least 1");
    let total = items.len();
    if jobs == 1 {
        // Serial fast path: inline, in order, no threads.
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let r = f(item);
                on_done(i + 1, total);
                r
            })
            .collect();
    }
    let workers = jobs.min(total).max(1);
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
    let slots_ref = Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let r = f(&items[i]);
                slots_ref.lock().unwrap()[i] = Some(r);
                let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                on_done(completed, total);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|j| j * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let out = run_ordered(jobs, &items, |&j| j * 3 + 1);
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn serial_path_runs_in_input_order() {
        let log = Mutex::new(Vec::new());
        let _ = run_ordered(1, &[10, 20, 30], |&j| {
            log.lock().unwrap().push(j);
            j
        });
        assert_eq!(*log.lock().unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn observer_sees_every_completion_exactly_once() {
        for jobs in [1, 4] {
            let calls = AtomicUsize::new(0);
            let out = run_ordered_observed(
                jobs,
                &(0..50).collect::<Vec<u64>>(),
                |&j| j,
                |completed, total| {
                    assert!(completed >= 1 && completed <= total);
                    assert_eq!(total, 50);
                    calls.fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(out.len(), 50);
            assert_eq!(calls.load(Ordering::Relaxed), 50, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = run_ordered(4, &[], |j: &u64| *j);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker count")]
    fn zero_jobs_rejected() {
        let _ = run_ordered(0, &[1u64], |&j| j);
    }
}
