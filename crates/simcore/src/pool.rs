//! Order-preserving parallel execution with an explicit worker count.
//!
//! The sweep runner's execution core: a job list fans out across `jobs`
//! OS threads through a work-stealing index counter, and results come back
//! **in input order** regardless of which worker finished which job when.
//! `jobs == 1` is a true serial fast path — no threads are spawned, jobs
//! run inline in input order — so callers can default to serial execution
//! and stay bit-exact with historical single-threaded runs by construction.
//!
//! Determinism contract: if every job is a pure function of its input (a
//! hermetic simulation cell with its own seeded `SimRng`), the returned
//! vector is byte-identical for any `jobs >= 1`. The property tests in
//! `crates/runner` enforce this end-to-end over real simulation grids.
//!
//! `jobs` is a *cap*, not a demand: the effective worker count is clamped
//! to the machine's available parallelism, so `--jobs 2` on a one-core box
//! degrades to the serial fast path instead of time-slicing two threads
//! over one core (the `speedup_jobs2: 0.890` regression). Workers buffer
//! `(index, result)` pairs locally and scatter them once at join — no
//! shared lock on the hot completion path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads the pool will actually use (1 when the
/// runtime cannot tell). Spawning more workers than cores never helps
/// CPU-bound simulation cells — it only adds context-switch overhead.
fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over `items` on up to `jobs` worker threads, returning results
/// in input order. `jobs` must be at least 1; `jobs == 1` runs serially on
/// the calling thread.
pub fn run_ordered<J, R, F>(jobs: usize, items: &[J], f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    run_ordered_observed(jobs, items, f, |_, _| {})
}

/// [`run_ordered`] with a completion observer: `on_done(completed, total)`
/// fires after each job finishes, in **completion order** (not input
/// order), from whichever thread finished the job. Use it for progress
/// reporting or streamed output merging; it must not affect the jobs
/// themselves.
pub fn run_ordered_observed<J, R, F, O>(jobs: usize, items: &[J], f: F, on_done: O) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
    O: Fn(usize, usize) + Sync,
{
    assert!(jobs >= 1, "worker count must be at least 1");
    let total = items.len();
    // Clamp the cap to real hardware: extra threads on a saturated core
    // only add scheduler churn (the measured jobs-2-slower-than-serial
    // bug on single-core runners).
    let workers = jobs.min(total).min(hardware_parallelism()).max(1);
    if workers == 1 {
        // Serial fast path: inline, in order, no threads.
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let r = f(item);
                on_done(i + 1, total);
                r
            })
            .collect();
    }
    run_on_threads(workers, items, &f, &on_done)
}

/// The threaded execution core: exactly `workers >= 2` scoped threads pull
/// job indices from a shared counter, buffer `(index, result)` pairs
/// locally, and the results are scattered into input order at join. Split
/// out from [`run_ordered_observed`] so the threaded path stays directly
/// testable on machines whose hardware parallelism would otherwise clamp
/// everything to the serial path.
fn run_on_threads<J, R, F, O>(workers: usize, items: &[J], f: &F, on_done: &O) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
    O: Fn(usize, usize) + Sync,
{
    let total = items.len();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Local buffer: no cross-thread lock per completion.
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            return mine;
                        }
                        mine.push((i, f(&items[i])));
                        let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                        on_done(completed, total);
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
    for (i, r) in buffers.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "job {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|j| j * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let out = run_ordered(jobs, &items, |&j| j * 3 + 1);
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn serial_path_runs_in_input_order() {
        let log = Mutex::new(Vec::new());
        let _ = run_ordered(1, &[10, 20, 30], |&j| {
            log.lock().unwrap().push(j);
            j
        });
        assert_eq!(*log.lock().unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn observer_sees_every_completion_exactly_once() {
        for jobs in [1, 4] {
            let calls = AtomicUsize::new(0);
            let out = run_ordered_observed(
                jobs,
                &(0..50).collect::<Vec<u64>>(),
                |&j| j,
                |completed, total| {
                    assert!(completed >= 1 && completed <= total);
                    assert_eq!(total, 50);
                    calls.fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(out.len(), 50);
            assert_eq!(calls.load(Ordering::Relaxed), 50, "jobs={jobs}");
        }
    }

    #[test]
    fn threaded_core_preserves_order_even_when_hardware_clamps() {
        // Drive run_on_threads directly so the threaded path is exercised
        // even on single-core CI runners where the public entry clamps to
        // the serial fast path.
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|j| j * 3 + 1).collect();
        for workers in [2, 3, 8] {
            let out = run_on_threads(workers, &items, &|j: &u64| j * 3 + 1, &|_, _| {});
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn threaded_core_observer_sees_every_completion() {
        let calls = AtomicUsize::new(0);
        let out = run_on_threads(
            3,
            &(0..50).collect::<Vec<u64>>(),
            &|&j| j,
            &|completed, total| {
                assert!(completed >= 1 && completed <= total);
                assert_eq!(total, 50);
                calls.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out.len(), 50);
        assert_eq!(calls.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn oversubscribed_jobs_clamp_to_hardware() {
        // Requesting absurd worker counts must still return correct,
        // ordered output (and not spawn 10k threads).
        let items: Vec<u64> = (0..40).collect();
        let out = run_ordered(10_000, &items, |&j| j + 1);
        assert_eq!(out, (1..=40).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = run_ordered(4, &[], |j: &u64| *j);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker count")]
    fn zero_jobs_rejected() {
        let _ = run_ordered(0, &[1u64], |&j| j);
    }
}
