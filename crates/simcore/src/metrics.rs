//! Live metrics exposition (A19): point-in-time [`MetricsSnapshot`]s of
//! counters, gauges and [`LogHistogram`]s, rendered in the Prometheus
//! text exposition format by a hand-rolled zero-dependency writer.
//!
//! The snapshot is the bridge between the in-process observability state
//! (the A14 [`registry::CounterRegistry`] plus the A19 latency
//! histograms) and anything outside the process: the threaded cluster
//! periodically renders one to `results/cluster_metrics.prom`, and the CI
//! smoke lints the output against the format rules.
//!
//! Format notes (the subset of the Prometheus text format we emit):
//!
//! * every series is preceded (once per metric name) by a
//!   `# HELP <name> <text>` line and a
//!   `# TYPE <name> counter|gauge|histogram` header;
//! * labels are rendered as `name{host="3"} value`;
//! * histograms expand to cumulative `<name>_bucket{le="..."}` series
//!   over the non-empty [`LogHistogram`] buckets plus the mandatory
//!   `le="+Inf"` bucket, and the `<name>_sum` / `<name>_count` pair.

use crate::stats::LogHistogram;
use crate::trace::registry::CounterRegistry;

/// One sample of a labelled series.
#[derive(Debug, Clone)]
struct Series<T> {
    name: String,
    host: Option<usize>,
    value: T,
}

/// A point-in-time copy of a host's (or the whole cluster's) metrics:
/// monotonic counters, gauges, and mergeable latency histograms.
///
/// Build one with the `push_*` methods (insertion order is preserved
/// within a metric name; series of the same name are grouped in the
/// rendered output), then render with
/// [`MetricsSnapshot::to_prometheus_text`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Capture time in seconds since the process/cluster epoch.
    pub at_secs: f64,
    counters: Vec<Series<u64>>,
    gauges: Vec<Series<f64>>,
    histograms: Vec<Series<LogHistogram>>,
}

/// Sanitize an arbitrary name into a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, mapping every other byte to `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

impl MetricsSnapshot {
    /// An empty snapshot captured at `at_secs`.
    pub fn new(at_secs: f64) -> Self {
        MetricsSnapshot {
            at_secs,
            ..Default::default()
        }
    }

    /// Add a counter sample (`host = None` for cluster-level series).
    pub fn push_counter(&mut self, name: &str, host: Option<usize>, value: u64) {
        self.counters.push(Series {
            name: sanitize(name),
            host,
            value,
        });
    }

    /// Add a gauge sample.
    pub fn push_gauge(&mut self, name: &str, host: Option<usize>, value: f64) {
        self.gauges.push(Series {
            name: sanitize(name),
            host,
            value,
        });
    }

    /// Add a histogram sample. Empty histograms still render (a lone
    /// `+Inf` bucket with count 0) so a scrape always sees the series.
    pub fn push_histogram(&mut self, name: &str, host: Option<usize>, hist: LogHistogram) {
        self.histograms.push(Series {
            name: sanitize(name),
            host,
            value: hist,
        });
    }

    /// Fold a whole [`CounterRegistry`] into the snapshot, prefixing every
    /// metric name with `prefix`: global and per-node counters become
    /// counter series (per-node ones labelled by host), gauges become
    /// gauge series.
    pub fn push_registry(&mut self, prefix: &str, reg: &CounterRegistry) {
        for (name, v) in reg.counters() {
            self.push_counter(&format!("{prefix}{name}"), None, v);
        }
        for (name, node, v) in reg.node_counters() {
            self.push_counter(&format!("{prefix}{name}"), Some(node), v);
        }
        for (name, v) in reg.gauges() {
            self.push_gauge(&format!("{prefix}{name}"), None, v);
        }
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render the snapshot in the Prometheus text exposition format. One
    /// `# HELP` / `# TYPE` header pair per metric name, samples grouped
    /// under it, and a trailing newline after every line.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        render_group(
            &mut out,
            "counter",
            "Monotonic event count exported by the realtor runtime.",
            &self.counters,
            |out, s| {
                render_sample(out, &s.name, s.host, None, &s.value.to_string());
            },
        );
        render_group(
            &mut out,
            "gauge",
            "Instantaneous value exported by the realtor runtime.",
            &self.gauges,
            |out, s| {
                render_sample(out, &s.name, s.host, None, &fmt_value(s.value));
            },
        );
        render_group(
            &mut out,
            "histogram",
            "Log-bucketed distribution exported by the realtor runtime.",
            &self.histograms,
            |out, s| {
                let mut cumulative = 0u64;
                let bucket_name = format!("{}_bucket", s.name);
                for (bound, count) in s.value.nonzero_buckets() {
                    cumulative += count;
                    render_sample(
                        out,
                        &bucket_name,
                        s.host,
                        Some(&bound.to_string()),
                        &cumulative.to_string(),
                    );
                }
                render_sample(
                    out,
                    &bucket_name,
                    s.host,
                    Some("+Inf"),
                    &s.value.count().to_string(),
                );
                render_sample(
                    out,
                    &format!("{}_sum", s.name),
                    s.host,
                    None,
                    &s.value.sum().to_string(),
                );
                render_sample(
                    out,
                    &format!("{}_count", s.name),
                    s.host,
                    None,
                    &s.value.count().to_string(),
                );
            },
        );
        out
    }
}

/// Render one value as a Prometheus sample value (floats keep their Rust
/// `Display` form, which Prometheus accepts; non-finite values use the
/// spelled-out forms).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn render_sample(out: &mut String, name: &str, host: Option<usize>, le: Option<&str>, value: &str) {
    out.push_str(name);
    match (host, le) {
        (None, None) => {}
        (host, le) => {
            out.push('{');
            let mut first = true;
            if let Some(h) = host {
                out.push_str(&format!("host=\"{h}\""));
                first = false;
            }
            if let Some(le) = le {
                if !first {
                    out.push(',');
                }
                out.push_str(&format!("le=\"{le}\""));
            }
            out.push('}');
        }
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Emit `# HELP` / `# TYPE` headers and samples for all series of one
/// kind, grouped by metric name (first-appearance order) so each name
/// gets exactly one header pair.
fn render_group<T>(
    out: &mut String,
    type_label: &str,
    help: &str,
    series: &[Series<T>],
    mut render: impl FnMut(&mut String, &Series<T>),
) {
    let mut names: Vec<&str> = Vec::new();
    for s in series {
        if !names.contains(&s.name.as_str()) {
            names.push(&s.name);
        }
    }
    for name in names {
        out.push_str(&format!("# HELP {name} {help}\n"));
        out.push_str(&format!("# TYPE {name} {type_label}\n"));
        for s in series.iter().filter(|s| s.name == name) {
            render(out, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_invalid_bytes() {
        assert_eq!(sanitize("runtime_admitted"), "runtime_admitted");
        assert_eq!(sanitize("a/b c-d"), "a_b_c_d");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn counters_and_gauges_render_with_type_headers() {
        let mut snap = MetricsSnapshot::new(1.5);
        snap.push_counter("jobs_total", None, 7);
        snap.push_counter("admitted", Some(0), 3);
        snap.push_counter("admitted", Some(1), 4);
        snap.push_gauge("mailbox_depth", Some(1), 2.0);
        let text = snap.to_prometheus_text();
        let expected = "# HELP jobs_total Monotonic event count exported by the realtor runtime.\n\
                        # TYPE jobs_total counter\n\
                        jobs_total 7\n\
                        # HELP admitted Monotonic event count exported by the realtor runtime.\n\
                        # TYPE admitted counter\n\
                        admitted{host=\"0\"} 3\n\
                        admitted{host=\"1\"} 4\n\
                        # HELP mailbox_depth Instantaneous value exported by the realtor runtime.\n\
                        # TYPE mailbox_depth gauge\n\
                        mailbox_depth{host=\"1\"} 2\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let mut h = LogHistogram::new();
        h.record_n(3, 2);
        h.record(50);
        let mut snap = MetricsSnapshot::new(0.0);
        snap.push_histogram("lat_ns", Some(2), h);
        let text = snap.to_prometheus_text();
        let expected = "# HELP lat_ns Log-bucketed distribution exported by the realtor runtime.\n\
                        # TYPE lat_ns histogram\n\
                        lat_ns_bucket{host=\"2\",le=\"3\"} 2\n\
                        lat_ns_bucket{host=\"2\",le=\"50\"} 3\n\
                        lat_ns_bucket{host=\"2\",le=\"+Inf\"} 3\n\
                        lat_ns_sum{host=\"2\"} 56\n\
                        lat_ns_count{host=\"2\"} 3\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn empty_histogram_still_exposes_the_series() {
        let mut snap = MetricsSnapshot::new(0.0);
        snap.push_histogram("lat_ns", None, LogHistogram::new());
        let text = snap.to_prometheus_text();
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("lat_ns_count 0\n"));
    }

    #[test]
    fn registry_folds_into_snapshot() {
        use crate::time::SimTime;
        use crate::trace::{TraceKind, Tracer};
        let t = Tracer::bounded(4);
        t.count("offered", 5);
        t.count_node("admitted", 1, 2);
        t.gauge_max("hw", 9.0);
        t.emit(SimTime::ZERO, None, TraceKind::TaskAdmit, &[]);
        let reg = t.snapshot().registry;
        let mut snap = MetricsSnapshot::new(0.0);
        snap.push_registry("realtor_", &reg);
        let text = snap.to_prometheus_text();
        assert!(text.contains("# TYPE realtor_offered counter\n"));
        assert!(text.contains("realtor_offered 5\n"));
        assert!(text.contains("realtor_admitted{host=\"1\"} 2\n"));
        assert!(text.contains("realtor_hw 9\n"));
    }
}
