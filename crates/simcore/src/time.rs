//! Virtual time for discrete-event simulation.
//!
//! Time is represented as an integer number of nanoseconds so that event
//! ordering is exact and simulations are bit-for-bit reproducible across
//! platforms (floating-point accumulation would not be). A nanosecond tick
//! gives a range of ~584 years in a `u64`, far beyond any simulation horizon
//! used in this workspace (the paper's experiments run for 10^4 simulated
//! seconds).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanosecond ticks per simulated second.
pub const TICKS_PER_SEC: u64 = 1_000_000_000;

/// An instant in virtual time, measured in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanosecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Construct from whole simulated seconds, saturating at
    /// [`SimTime::MAX`] (matching [`SimTime::from_secs_f64`]'s documented
    /// saturation; a `u64` holds only ~584 years of nanosecond ticks, so
    /// large horizons must clamp to the far-future sentinel rather than
    /// wrap in release builds).
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(TICKS_PER_SEC))
    }

    /// Construct from fractional simulated seconds (rounds to nearest tick).
    ///
    /// Negative and non-finite inputs saturate to zero; this keeps workload
    /// generators total without littering call sites with error handling.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_ticks(secs))
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Saturating difference between two instants (`self - earlier`).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition that saturates at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole nanosecond ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Construct from whole simulated seconds, saturating at
    /// [`SimDuration::MAX`].
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(TICKS_PER_SEC))
    }

    /// Construct from whole simulated milliseconds, saturating at
    /// [`SimDuration::MAX`].
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(TICKS_PER_SEC / 1_000))
    }

    /// Construct from fractional simulated seconds (rounds to nearest tick).
    ///
    /// Negative and non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_ticks(secs))
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This span expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True when the duration is zero ticks.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative float, saturating on overflow.
    ///
    /// Used by the adaptive HELP-interval controller (`interval * alpha`).
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration(secs_to_ticks(self.as_secs_f64() * k))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

#[inline]
fn secs_to_ticks(secs: f64) -> u64 {
    if !secs.is_finite() || secs <= 0.0 {
        if secs.is_infinite() && secs > 0.0 {
            return u64::MAX;
        }
        return 0;
    }
    let ticks = secs * TICKS_PER_SEC as f64;
    if ticks >= u64::MAX as f64 {
        u64::MAX
    } else {
        ticks.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    /// Saturates at [`SimTime::MAX`]: an instant pushed past the end of
    /// representable time stays the "infinitely far" sentinel instead of
    /// wrapping around in release builds.
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).ticks(), 3 * TICKS_PER_SEC);
        assert_eq!(SimTime::from_secs_f64(2.5).as_secs_f64(), 2.5);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(SimTime::from_secs(14) - t, d);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(5);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(4));
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(2.0), SimDuration::from_secs(20));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total_on_ticks() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_secs_f64(0.5),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_secs_f64(0.5),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn from_secs_saturates_instead_of_wrapping() {
        // u64::MAX seconds * 1e9 ticks/sec overflows 147x over; before the
        // fix this wrapped silently in release builds.
        assert_eq!(SimTime::from_secs(u64::MAX), SimTime::MAX);
        assert_eq!(
            SimTime::from_secs(u64::MAX / TICKS_PER_SEC + 1),
            SimTime::MAX
        );
        assert_eq!(SimDuration::from_secs(u64::MAX), SimDuration::MAX);
        assert_eq!(SimDuration::from_millis(u64::MAX), SimDuration::MAX);
        // The largest exactly-representable horizon still round-trips.
        let edge = u64::MAX / TICKS_PER_SEC;
        assert_eq!(SimTime::from_secs(edge).ticks(), edge * TICKS_PER_SEC);
    }

    #[test]
    fn simtime_add_saturates_at_max() {
        let near_end = SimTime::from_ticks(u64::MAX - 10);
        assert_eq!(near_end + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::MAX + SimDuration::from_ticks(1), SimTime::MAX);
        let mut t = near_end;
        t += SimDuration::from_secs(100);
        assert_eq!(t, SimTime::MAX);
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::MAX), SimTime::MAX);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.25).to_string(), "1.250000");
        assert_eq!(SimDuration::from_millis(10).to_string(), "0.010000");
    }
}
