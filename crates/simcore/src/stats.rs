//! Statistics collectors used by the simulation and the experiment harness.
//!
//! All collectors are plain accumulators: cheap to update on the hot path,
//! with derived quantities (means, variances, quantiles) computed on demand.

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Add one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Streaming mean / variance via Welford's algorithm, plus min/max.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval of the
    /// mean. Zero for fewer than two observations.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel Welford update).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue length).
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the accumulator
/// integrates the previous value over the elapsed interval.
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    integral: f64,
    start: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            value: v0,
            last_change: t0,
            integral: 0.0,
            start: t0,
            peak: v0,
        }
    }

    /// Update the signal to `v` at time `now`.
    pub fn set(&mut self, now: SimTime, v: f64) {
        self.integral += self.value * now.since(self.last_change).as_secs_f64();
        self.value = v;
        self.last_change = now;
        self.peak = self.peak.max(v);
    }

    /// Current signal value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value ever set.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[start, now]` (0 over an empty interval).
    pub fn mean(&self, now: SimTime) -> f64 {
        let span = now.since(self.start).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let full = self.integral + self.value * now.since(self.last_change).as_secs_f64();
        full / span
    }
}

/// A fixed-width linear histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `nbins` equal bins covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            let i = i.min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Total number of observations recorded (including out-of-range).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations below `lo` / at or above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`) by linear interpolation within
    /// the containing bin. `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total as f64;
        let mut seen = self.underflow as f64;
        if seen >= target && self.underflow > 0 {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = seen + c as f64;
            if next >= target && c > 0 {
                let frac = if c == 0 { 0.0 } else { (target - seen) / c as f64 };
                return self.lo + w * (i as f64 + frac.clamp(0.0, 1.0));
            }
            seen = next;
        }
        self.hi
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
}

/// Ratio of two counters with a guarded denominator (e.g. admitted/offered).
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Mean inter-event spacing implied by a counter over a window.
#[inline]
pub fn rate_per_sec(count: u64, window: SimDuration) -> f64 {
    let s = window.as_secs_f64();
    if s <= 0.0 {
        0.0
    } else {
        count as f64 / s
    }
}

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n · Σx²)`, in `(0, 1]`; 1 means perfectly even. Returns 1 for
/// empty or all-zero input (nothing is unfair about nothing).
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    debug_assert!(xs.iter().all(|&x| x >= 0.0), "allocations must be non-negative");
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|&x| x * x).sum();
    if sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (xs.len() as f64 * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // population variance is 4.0; sample variance is 32/7
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert!(w.ci95_half_width() > 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 10.0); // 0 for 10s
        tw.set(SimTime::from_secs(20), 0.0); // 10 for 10s
        let m = tw.mean(SimTime::from_secs(20));
        assert!((m - 5.0).abs() < 1e-12, "mean {m}");
        assert_eq!(tw.peak(), 10.0);
        // continuing at 0 halves the mean again
        let m = tw.mean(SimTime::from_secs(40));
        assert!((m - 2.5).abs() < 1e-12, "mean {m}");
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 100);
        let med = h.quantile(0.5);
        assert!((med - 50.0).abs() <= 1.0, "median {med}");
        let p90 = h.quantile(0.9);
        assert!((p90 - 90.0).abs() <= 1.0, "p90 {p90}");
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(100.0);
        h.record(5.0);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn ratio_guards_zero() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(5, 10), 0.5);
    }

    #[test]
    fn rate_per_sec_guards_zero() {
        assert_eq!(rate_per_sec(10, SimDuration::ZERO), 0.0);
        assert_eq!(rate_per_sec(10, SimDuration::from_secs(5)), 2.0);
    }

    #[test]
    fn jain_fairness_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One node hogging everything: index = 1/n.
        let skew = jain_fairness(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12, "skew {skew}");
        let mid = jain_fairness(&[1.0, 2.0, 3.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }
}
