//! Statistics collectors used by the simulation and the experiment harness.
//!
//! All collectors are plain accumulators: cheap to update on the hot path,
//! with derived quantities (means, variances, quantiles) computed on demand.

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Add one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Streaming mean / variance via Welford's algorithm, plus min/max.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval of the
    /// mean. Zero for fewer than two observations.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel Welford update).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue length).
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the accumulator
/// integrates the previous value over the elapsed interval.
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    integral: f64,
    start: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            value: v0,
            last_change: t0,
            integral: 0.0,
            start: t0,
            peak: v0,
        }
    }

    /// Update the signal to `v` at time `now`.
    pub fn set(&mut self, now: SimTime, v: f64) {
        self.integral += self.value * now.since(self.last_change).as_secs_f64();
        self.value = v;
        self.last_change = now;
        self.peak = self.peak.max(v);
    }

    /// Current signal value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value ever set.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[start, now]` (0 over an empty interval).
    pub fn mean(&self, now: SimTime) -> f64 {
        let span = now.since(self.start).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let full = self.integral + self.value * now.since(self.last_change).as_secs_f64();
        full / span
    }
}

/// A fixed-width linear histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `nbins` equal bins covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            let i = i.min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Total number of observations recorded (including out-of-range).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations below `lo` / at or above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`) by linear interpolation within
    /// the containing bin. `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total as f64;
        let mut seen = self.underflow as f64;
        if seen >= target && self.underflow > 0 {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = seen + c as f64;
            if next >= target && c > 0 {
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - seen) / c as f64
                };
                return self.lo + w * (i as f64 + frac.clamp(0.0, 1.0));
            }
            seen = next;
        }
        self.hi
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
}

/// Sub-bucket resolution bits of [`LogHistogram`]: 2^6 = 64 sub-buckets
/// per power-of-two octave.
const LOG_HIST_SUB_BITS: u32 = 6;
/// Sub-buckets per octave.
const LOG_HIST_SUBS: u64 = 1 << LOG_HIST_SUB_BITS;
/// Total bucket count: 64 exact buckets for values `0..64`, then 58
/// octaves (msb 6..=63) of 64 sub-buckets each.
const LOG_HIST_BUCKETS: usize = ((64 - LOG_HIST_SUB_BITS as usize) * 64) + 64;

/// A log-bucketed, HDR-style histogram over `u64` values.
///
/// Values `0..64` land in exact unit buckets; larger values share an
/// octave (a power-of-two range) split into 64 sub-buckets, so every
/// bucket's width is at most `1/64` of its lower bound. Quantile queries
/// return the containing bucket's upper bound, giving a one-sided
/// guarantee: the reported `q`-quantile is `>=` the exact rank-`⌈q·n⌉`
/// order statistic and overestimates it by at most a factor of
/// `1 + 1/64` (≈ 1.6%, see [`LogHistogram::RELATIVE_ERROR`]).
///
/// The structure is deterministic and mergeable: [`LogHistogram::merge`]
/// is element-wise bucket addition (plus an exact `u128` sum), so merging
/// is associative and commutative and recording order never matters —
/// the properties the parallel sweep runner and the threaded cluster rely
/// on to combine per-worker histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// Worst-case relative overestimate of a quantile query: bucket width
    /// over bucket lower bound, `1/64`.
    pub const RELATIVE_ERROR: f64 = 1.0 / 64.0;

    /// An empty histogram. Buckets are allocated lazily on first record,
    /// so an unused histogram costs only the struct itself.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Bucket index for `v`.
    #[inline]
    fn bucket_index(v: u64) -> usize {
        if v < LOG_HIST_SUBS {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let oct = msb - LOG_HIST_SUB_BITS + 1;
            let sub = (v >> (msb - LOG_HIST_SUB_BITS)) & (LOG_HIST_SUBS - 1);
            ((oct as usize) << LOG_HIST_SUB_BITS) | sub as usize
        }
    }

    /// Inclusive upper bound of bucket `index` (the largest value that
    /// maps to it).
    fn bucket_high(index: usize) -> u64 {
        if index < LOG_HIST_SUBS as usize {
            index as u64
        } else {
            let oct = (index >> LOG_HIST_SUB_BITS) as u32;
            let sub = index as u64 & (LOG_HIST_SUBS - 1);
            let low = (LOG_HIST_SUBS | sub) << (oct - 1);
            let width = 1u64 << (oct - 1);
            low + (width - 1)
        }
    }

    /// Record one observation of `v`.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; LOG_HIST_BUCKETS];
        }
        self.counts[Self::bucket_index(v)] += n;
        if self.total == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.total += n;
        self.sum += v as u128 * n as u128;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Merge `other` into `self` (element-wise bucket addition). The
    /// result equals recording both input streams into one histogram, in
    /// any order — merge is associative and commutative.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        if self.total == 0 {
            *self = other.clone();
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; LOG_HIST_BUCKETS];
        }
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0 < q <= 1`): the upper bound of the bucket
    /// holding the rank-`⌈q·n⌉` observation, clamped to the recorded
    /// maximum. Returns 0 when empty. The result is `>=` the exact
    /// order statistic and at most `(1 + RELATIVE_ERROR)` times it.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Iterate non-empty buckets as `(inclusive_upper_bound, count)`
    /// pairs, in increasing bound order — the shape the Prometheus text
    /// renderer needs for cumulative `le` buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_high(i), c))
    }
}

/// Ratio of two counters with a guarded denominator (e.g. admitted/offered).
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Mean inter-event spacing implied by a counter over a window.
#[inline]
pub fn rate_per_sec(count: u64, window: SimDuration) -> f64 {
    let s = window.as_secs_f64();
    if s <= 0.0 {
        0.0
    } else {
        count as f64 / s
    }
}

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n · Σx²)`, in `(0, 1]`; 1 means perfectly even. Returns 1 for
/// empty or all-zero input (nothing is unfair about nothing).
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    debug_assert!(
        xs.iter().all(|&x| x >= 0.0),
        "allocations must be non-negative"
    );
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|&x| x * x).sum();
    if sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (xs.len() as f64 * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // population variance is 4.0; sample variance is 32/7
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert!(w.ci95_half_width() > 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 10.0); // 0 for 10s
        tw.set(SimTime::from_secs(20), 0.0); // 10 for 10s
        let m = tw.mean(SimTime::from_secs(20));
        assert!((m - 5.0).abs() < 1e-12, "mean {m}");
        assert_eq!(tw.peak(), 10.0);
        // continuing at 0 halves the mean again
        let m = tw.mean(SimTime::from_secs(40));
        assert!((m - 2.5).abs() < 1e-12, "mean {m}");
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 100);
        let med = h.quantile(0.5);
        assert!((med - 50.0).abs() <= 1.0, "median {med}");
        let p90 = h.quantile(0.9);
        assert!((p90 - 90.0).abs() <= 1.0, "p90 {p90}");
    }

    #[test]
    fn histogram_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(100.0);
        h.record(5.0);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn ratio_guards_zero() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(5, 10), 0.5);
    }

    #[test]
    fn rate_per_sec_guards_zero() {
        assert_eq!(rate_per_sec(10, SimDuration::ZERO), 0.0);
        assert_eq!(rate_per_sec(10, SimDuration::from_secs(5)), 2.0);
    }

    #[test]
    fn log_histogram_small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        for v in 1..=64u64 {
            let q = v as f64 / 64.0;
            assert_eq!(h.quantile(q), v - 1, "q={q}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.sum(), (0..64u64).sum::<u64>() as u128);
    }

    #[test]
    fn log_histogram_error_bound_holds() {
        // Every bucket's upper bound is within 1/64 of its lower bound.
        for v in [64u64, 100, 1000, 65_535, 1 << 30, u64::MAX / 3, u64::MAX] {
            let mut h = LogHistogram::new();
            h.record(v);
            let q = h.quantile(1.0);
            assert!(q >= v, "quantile {q} < recorded {v}");
            let rel = (q - v) as f64 / v as f64;
            assert!(
                rel <= LogHistogram::RELATIVE_ERROR,
                "value {v}: rel err {rel}"
            );
        }
    }

    #[test]
    fn log_histogram_empty_and_mean() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        let mut h = LogHistogram::new();
        h.record_n(10, 3);
        h.record(20);
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_merge_is_associative_and_order_invariant() {
        use crate::check::{forall, gen};
        forall(
            "log_hist_merge_assoc",
            0xA19,
            64,
            |rng| {
                let part = |rng: &mut crate::rng::SimRng| {
                    gen::vec(rng, 0, 40, |r| match gen::u8_in(r, 0, 3) {
                        0 => gen::u64_in(r, 0, 128),
                        1 => gen::u64_in(r, 0, 1 << 20),
                        _ => gen::any_u64(r),
                    })
                };
                (part(rng), part(rng), part(rng))
            },
            |(a, b, c)| {
                let hist = |vs: &[u64]| {
                    let mut h = LogHistogram::new();
                    for &v in vs {
                        h.record(v);
                    }
                    h
                };
                let (ha, hb, hc) = (hist(a), hist(b), hist(c));
                // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
                let mut left = ha.clone();
                left.merge(&hb);
                left.merge(&hc);
                let mut bc = hb.clone();
                bc.merge(&hc);
                let mut right = ha.clone();
                right.merge(&bc);
                if left != right {
                    return Err("merge not associative".into());
                }
                // Recording the concatenation in any order gives the same
                // histogram as merging the parts.
                let mut all: Vec<u64> = a.iter().chain(b).chain(c).copied().collect();
                all.reverse();
                if hist(&all) != left {
                    return Err("merge differs from order-reversed recording".into());
                }
                Ok(())
            },
        );
    }

    #[test]
    fn log_histogram_quantile_error_bound_vs_exact_sort() {
        use crate::check::{forall, gen};
        forall(
            "log_hist_quantile_bound",
            0xA19,
            64,
            |rng| {
                gen::vec(rng, 1, 200, |r| match gen::u8_in(r, 0, 2) {
                    0 => gen::u64_in(r, 0, 1000),
                    _ => gen::u64_in(r, 0, 1 << 40),
                })
            },
            |vs| {
                let mut h = LogHistogram::new();
                for &v in vs {
                    h.record(v);
                }
                let mut sorted = vs.clone();
                sorted.sort_unstable();
                for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
                    let rank = ((q * vs.len() as f64).ceil() as usize).clamp(1, vs.len());
                    let exact = sorted[rank - 1];
                    let approx = h.quantile(q);
                    if approx < exact {
                        return Err(format!("q={q}: approx {approx} < exact {exact}"));
                    }
                    let bound = exact as f64 * (1.0 + LogHistogram::RELATIVE_ERROR);
                    if approx as f64 > bound {
                        return Err(format!(
                            "q={q}: approx {approx} > bound {bound} (exact {exact})"
                        ));
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn log_histogram_nonzero_buckets_are_cumulative_consistent() {
        let mut h = LogHistogram::new();
        for v in [1u64, 1, 5, 100, 100_000] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "bounds sorted");
    }

    #[test]
    fn jain_fairness_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One node hogging everything: index = 1/n.
        let skew = jain_fairness(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12, "skew {skew}");
        let mid = jain_fairness(&[1.0, 2.0, 3.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }
}
