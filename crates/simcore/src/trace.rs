//! Deterministic structured tracing and the named-counter registry (A14).
//!
//! Every layer of the stack (protocol state machines, the simulated world,
//! the host model) can emit typed [`TraceEvent`]s through a shared
//! [`Tracer`] handle. The tracer is a pure *observer*:
//!
//! * **Disabled by default.** [`Tracer::disabled`] carries no state at all;
//!   every emit is an early return. Enabling tracing never touches an RNG
//!   stream, the event queue, or any simulation state, so traced runs are
//!   bit-for-bit identical to untraced runs (pinned by
//!   `tests/trace_parity.rs`).
//! * **Bounded.** Events land in a ring buffer of fixed capacity; when it
//!   overflows the oldest event is dropped and [`TraceSnapshot::dropped`]
//!   accounts for it, so a long run can never exhaust memory.
//! * **Filtered.** A minimum [`Severity`] and an optional [`TraceKind`]
//!   allow-list are applied at emit time; filtered events cost one enum
//!   compare and are never materialized.
//! * **Exportable.** [`TraceEvent::to_json_line`] renders one hand-rolled
//!   JSON object per event (the workspace has no serde);
//!   [`validate_json_line`] is the matching in-tree checker used by the CI
//!   trace smoke.
//!
//! The same handle carries the [`registry::CounterRegistry`] of named
//! monotonic counters and gauges. The simulator bumps a counter at exactly
//! the sites that mutate the corresponding `SimResult` field, so registry
//! totals reconcile 1:1 against the run ledger
//! (`tests/trace_reconciliation.rs`).
//!
//! The handle is cheaply cloneable (`Arc`) and `Send + Sync`: one tracer can
//! observe all 25 protocol instances plus the world. The interior mutex is
//! uncontended in the single-threaded simulator.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Event severity, ordered `Debug < Info < Warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Per-message noise (pledge traffic, refreshes, watermarks).
    Debug,
    /// Protocol and lifecycle milestones.
    Info,
    /// Losses: kills, interruptions, destroyed work, confirmed deaths.
    Warn,
}

impl Severity {
    /// Lower-case label used in the JSON export.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
        }
    }
}

/// The typed event vocabulary of the whole stack.
///
/// Protocol kinds are emitted by `realtor-core`, task/attack kinds by
/// `realtor-sim::world`, queue/checkpoint kinds from `realtor-node` data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum TraceKind {
    /// Algorithm H flooded a HELP (community invitation/refresh).
    HelpFlood,
    /// Algorithm H changed `HELP_interval` (penalty or reward).
    IntervalAdapt,
    /// A PLEDGE was sent (help answer or unsolicited threshold crossing).
    PledgeSend,
    /// A fresh PLEDGE was folded into the availability store.
    PledgeAccept,
    /// A stale/duplicate PLEDGE was rejected by the watermark.
    PledgeStaleDrop,
    /// First HELP from an organizer: joined its community.
    CommunityJoin,
    /// A repeat HELP extended an existing membership.
    CommunityRefresh,
    /// Soft-state memberships aged out.
    CommunityExpire,
    /// Failure detector: a silent peer became *suspect*.
    PeerSuspect,
    /// Failure detector: a suspect was *confirmed* dead.
    PeerConfirmed,
    /// A confirmed-dead peer was heard from again (false suspicion heals).
    PeerRevived,
    /// A task was admitted into a queue (locally or at a migration target).
    TaskAdmit,
    /// A task was rejected (dead node, oversize, no candidate, or refusal).
    TaskReject,
    /// A migration negotiation was launched.
    MigrateStart,
    /// A migration negotiation resolved (any kind: arrival/recovery/evac).
    MigrateResolve,
    /// A kill interrupted admitted-but-unfinished tasks.
    TaskInterrupt,
    /// An interrupted task's checkpoint was re-admitted somewhere.
    TaskRecover,
    /// An interrupted task was destroyed for good.
    TaskDestroy,
    /// A warned node started evacuating one pending task.
    EvacuationStart,
    /// A scripted attack event fired.
    AttackAction,
    /// A node was killed.
    NodeKill,
    /// A dead node was restored.
    NodeRestore,
    /// A work queue reached a new lifetime backlog high-water mark.
    QueueWatermark,
    /// A kill split the task log into checkpoints and destroyed work.
    CheckpointSplit,
}

impl TraceKind {
    /// Every kind, in declaration order.
    pub const ALL: [TraceKind; 24] = [
        TraceKind::HelpFlood,
        TraceKind::IntervalAdapt,
        TraceKind::PledgeSend,
        TraceKind::PledgeAccept,
        TraceKind::PledgeStaleDrop,
        TraceKind::CommunityJoin,
        TraceKind::CommunityRefresh,
        TraceKind::CommunityExpire,
        TraceKind::PeerSuspect,
        TraceKind::PeerConfirmed,
        TraceKind::PeerRevived,
        TraceKind::TaskAdmit,
        TraceKind::TaskReject,
        TraceKind::MigrateStart,
        TraceKind::MigrateResolve,
        TraceKind::TaskInterrupt,
        TraceKind::TaskRecover,
        TraceKind::TaskDestroy,
        TraceKind::EvacuationStart,
        TraceKind::AttackAction,
        TraceKind::NodeKill,
        TraceKind::NodeRestore,
        TraceKind::QueueWatermark,
        TraceKind::CheckpointSplit,
    ];

    /// Snake-case label used in the JSON export and summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::HelpFlood => "help_flood",
            TraceKind::IntervalAdapt => "interval_adapt",
            TraceKind::PledgeSend => "pledge_send",
            TraceKind::PledgeAccept => "pledge_accept",
            TraceKind::PledgeStaleDrop => "pledge_stale_drop",
            TraceKind::CommunityJoin => "community_join",
            TraceKind::CommunityRefresh => "community_refresh",
            TraceKind::CommunityExpire => "community_expire",
            TraceKind::PeerSuspect => "peer_suspect",
            TraceKind::PeerConfirmed => "peer_confirmed",
            TraceKind::PeerRevived => "peer_revived",
            TraceKind::TaskAdmit => "task_admit",
            TraceKind::TaskReject => "task_reject",
            TraceKind::MigrateStart => "migrate_start",
            TraceKind::MigrateResolve => "migrate_resolve",
            TraceKind::TaskInterrupt => "task_interrupt",
            TraceKind::TaskRecover => "task_recover",
            TraceKind::TaskDestroy => "task_destroy",
            TraceKind::EvacuationStart => "evacuation_start",
            TraceKind::AttackAction => "attack_action",
            TraceKind::NodeKill => "node_kill",
            TraceKind::NodeRestore => "node_restore",
            TraceKind::QueueWatermark => "queue_watermark",
            TraceKind::CheckpointSplit => "checkpoint_split",
        }
    }

    /// The default severity this kind is emitted at.
    pub fn severity(self) -> Severity {
        match self {
            TraceKind::PledgeSend
            | TraceKind::PledgeAccept
            | TraceKind::PledgeStaleDrop
            | TraceKind::CommunityRefresh
            | TraceKind::QueueWatermark => Severity::Debug,
            TraceKind::TaskInterrupt
            | TraceKind::TaskDestroy
            | TraceKind::NodeKill
            | TraceKind::AttackAction
            | TraceKind::PeerConfirmed => Severity::Warn,
            _ => Severity::Info,
        }
    }

    /// One-hot bit for kind-mask filtering.
    fn bit(self) -> u32 {
        1u32 << (self as u32)
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceValue {
    /// Unsigned integer (counts, ids).
    U64(u64),
    /// Float (seconds of work, intervals, probabilities).
    F64(f64),
    /// Static label (causes, reasons, attack kinds).
    Str(&'static str),
    /// Boolean flag.
    Bool(bool),
}

impl TraceValue {
    fn write_json(&self, out: &mut String) {
        match *self {
            TraceValue::U64(v) => out.push_str(&v.to_string()),
            TraceValue::F64(v) => out.push_str(&fmt_f64(v)),
            TraceValue::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            TraceValue::Bool(b) => out.push_str(if b { "true" } else { "false" }),
        }
    }
}

/// A non-finite float has no JSON number form; exported as `null`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub t: SimTime,
    /// Node the event concerns (`None` for world-level events).
    pub node: Option<usize>,
    /// What happened.
    pub kind: TraceKind,
    /// Typed key/value details; keys are static and unique per kind.
    pub fields: Vec<(&'static str, TraceValue)>,
}

impl TraceEvent {
    /// Severity the event was emitted at (derived from its kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }

    /// Render the event as one flat JSON object (no trailing newline):
    /// `{"t":<ticks>,"t_secs":<f64>,"node":<id|null>,"kind":"...",
    /// "sev":"...",<fields...>}`.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"t\":");
        out.push_str(&self.t.ticks().to_string());
        out.push_str(",\"t_secs\":");
        out.push_str(&fmt_f64(self.t.as_secs_f64()));
        out.push_str(",\"node\":");
        match self.node {
            Some(n) => out.push_str(&n.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"sev\":\"");
        out.push_str(self.severity().as_str());
        out.push('"');
        for (k, v) in &self.fields {
            out.push_str(",\"");
            escape_into(k, &mut out);
            out.push_str("\":");
            v.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

/// Point-in-time copy of everything a tracer has collected.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Buffered events, oldest first (at most the ring capacity).
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring after it filled.
    pub dropped: u64,
    /// Events that passed the filters over the tracer's lifetime
    /// (buffered + dropped).
    pub recorded: u64,
    /// Events rejected by the severity/kind filters.
    pub filtered: u64,
    /// The counter/gauge registry.
    pub registry: registry::CounterRegistry,
}

struct TraceState {
    capacity: usize,
    min_severity: Severity,
    kind_mask: u32,
    ring: VecDeque<TraceEvent>,
    dropped: u64,
    recorded: u64,
    filtered: u64,
    registry: registry::CounterRegistry,
}

/// A cloneable tracing handle; see the module docs.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceState>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(_) => write!(f, "Tracer(enabled)"),
        }
    }
}

impl Tracer {
    /// The no-op tracer: every call is an early return, nothing allocates.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer with a ring of `capacity` events, recording every
    /// kind at every severity.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        Tracer {
            inner: Some(Arc::new(Mutex::new(TraceState {
                capacity,
                min_severity: Severity::Debug,
                kind_mask: u32::MAX,
                ring: VecDeque::with_capacity(capacity.min(4096)),
                dropped: 0,
                recorded: 0,
                filtered: 0,
                registry: registry::CounterRegistry::new(),
            }))),
        }
    }

    /// Builder-style: drop events below `min` severity.
    pub fn with_min_severity(self, min: Severity) -> Self {
        if let Some(inner) = &self.inner {
            inner.lock().expect("trace lock").min_severity = min;
        }
        self
    }

    /// Builder-style: record only the listed kinds.
    pub fn with_kinds(self, kinds: &[TraceKind]) -> Self {
        if let Some(inner) = &self.inner {
            let mask = kinds.iter().fold(0u32, |m, k| m | k.bit());
            inner.lock().expect("trace lock").kind_mask = mask;
        }
        self
    }

    /// Is this handle connected to a live buffer?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one event. Filtered or disabled emits never allocate.
    ///
    /// The disabled check is inlined so protocol hot paths (one or more
    /// emits per delivered message) pay a single predicted branch when
    /// tracing is off; the recording path stays out of line.
    #[inline]
    pub fn emit(
        &self,
        t: SimTime,
        node: Option<usize>,
        kind: TraceKind,
        fields: &[(&'static str, TraceValue)],
    ) {
        if self.inner.is_some() {
            self.emit_slow(t, node, kind, fields);
        }
    }

    #[cold]
    fn emit_slow(
        &self,
        t: SimTime,
        node: Option<usize>,
        kind: TraceKind,
        fields: &[(&'static str, TraceValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock().expect("trace lock");
        if kind.severity() < st.min_severity || st.kind_mask & kind.bit() == 0 {
            st.filtered += 1;
            return;
        }
        st.recorded += 1;
        if st.ring.len() == st.capacity {
            st.ring.pop_front();
            st.dropped += 1;
        }
        st.ring.push_back(TraceEvent {
            t,
            node,
            kind,
            fields: fields.to_vec(),
        });
    }

    /// Add `n` to the global monotonic counter `name`.
    #[inline]
    pub fn count(&self, name: &'static str, n: u64) {
        if self.inner.is_some() {
            self.count_slow(name, n);
        }
    }

    #[cold]
    fn count_slow(&self, name: &'static str, n: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().expect("trace lock").registry.add(name, n);
    }

    /// Add `n` to the per-node monotonic counter `name`.
    #[inline]
    pub fn count_node(&self, name: &'static str, node: usize, n: u64) {
        if self.inner.is_some() {
            self.count_node_slow(name, node, n);
        }
    }

    #[cold]
    fn count_node_slow(&self, name: &'static str, node: usize, n: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .lock()
            .expect("trace lock")
            .registry
            .add_node(name, node, n);
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner
            .lock()
            .expect("trace lock")
            .registry
            .gauge_set(name, value);
    }

    /// Raise the gauge `name` to `value` if `value` exceeds it (high-water
    /// semantics).
    pub fn gauge_max(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner
            .lock()
            .expect("trace lock")
            .registry
            .gauge_max(name, value);
    }

    /// Current value of the global counter `name` (0 when disabled/absent).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.lock().expect("trace lock").registry.counter(name),
        }
    }

    /// Current value of the per-node counter `name` (0 when
    /// disabled/absent).
    pub fn node_counter(&self, name: &str, node: usize) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner
                .lock()
                .expect("trace lock")
                .registry
                .node_counter(name, node),
        }
    }

    /// Copy out everything collected so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.inner {
            None => TraceSnapshot::default(),
            Some(inner) => {
                let st = inner.lock().expect("trace lock");
                TraceSnapshot {
                    events: st.ring.iter().cloned().collect(),
                    dropped: st.dropped,
                    recorded: st.recorded,
                    filtered: st.filtered,
                    registry: st.registry.clone(),
                }
            }
        }
    }

    /// Render every buffered event as JSON lines (one object per line,
    /// trailing newline included when non-empty).
    pub fn export_jsonl(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for e in &snap.events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// Named monotonic counters and gauges.
pub mod registry {
    use std::collections::BTreeMap;

    /// Registry of named monotonic counters (global and per-node) and
    /// gauges. Deterministic iteration (BTreeMap) so exports are stable.
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct CounterRegistry {
        counters: BTreeMap<&'static str, u64>,
        node_counters: BTreeMap<(&'static str, usize), u64>,
        gauges: BTreeMap<&'static str, f64>,
    }

    impl CounterRegistry {
        /// An empty registry.
        pub fn new() -> Self {
            Self::default()
        }

        /// Add `n` to the global counter `name`.
        pub fn add(&mut self, name: &'static str, n: u64) {
            *self.counters.entry(name).or_insert(0) += n;
        }

        /// Add `n` to the per-node counter `name`.
        pub fn add_node(&mut self, name: &'static str, node: usize, n: u64) {
            *self.node_counters.entry((name, node)).or_insert(0) += n;
        }

        /// Set the gauge `name`.
        pub fn gauge_set(&mut self, name: &'static str, value: f64) {
            self.gauges.insert(name, value);
        }

        /// Raise the gauge `name` to `value` if larger.
        pub fn gauge_max(&mut self, name: &'static str, value: f64) {
            let g = self.gauges.entry(name).or_insert(value);
            if value > *g {
                *g = value;
            }
        }

        /// Global counter value (0 when absent).
        pub fn counter(&self, name: &str) -> u64 {
            self.counters.get(name).copied().unwrap_or(0)
        }

        /// Per-node counter value (0 when absent).
        pub fn node_counter(&self, name: &str, node: usize) -> u64 {
            self.node_counters.get(&(name, node)).copied().unwrap_or(0)
        }

        /// Sum of the per-node counter `name` over all nodes.
        pub fn node_total(&self, name: &str) -> u64 {
            self.node_counters
                .iter()
                .filter(|((n, _), _)| *n == name)
                .map(|(_, &v)| v)
                .sum()
        }

        /// Gauge value (`None` when never set).
        pub fn gauge(&self, name: &str) -> Option<f64> {
            self.gauges.get(name).copied()
        }

        /// All global counters, name-sorted.
        pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
            self.counters.iter().map(|(&k, &v)| (k, v))
        }

        /// All per-node counters, `(name, node)`-sorted.
        pub fn node_counters(&self) -> impl Iterator<Item = (&'static str, usize, u64)> + '_ {
            self.node_counters.iter().map(|(&(k, n), &v)| (k, n, v))
        }

        /// All gauges, name-sorted.
        pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
            self.gauges.iter().map(|(&k, &v)| (k, v))
        }

        /// True when nothing was ever recorded.
        pub fn is_empty(&self) -> bool {
            self.counters.is_empty() && self.node_counters.is_empty() && self.gauges.is_empty()
        }

        /// One JSON object with `counters`, `node_counters` (as
        /// `"name/node"` keys) and `gauges` sub-objects.
        pub fn to_json(&self) -> String {
            let mut out = String::from("{\"counters\":{");
            for (i, (k, v)) in self.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":{v}"));
            }
            out.push_str("},\"node_counters\":{");
            for (i, ((k, node), v)) in self.node_counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}/{node}\":{v}"));
            }
            out.push_str("},\"gauges\":{");
            for (i, (k, v)) in self.gauges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":{}", super::fmt_f64(*v)));
            }
            out.push_str("}}");
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON validator (no serde in the workspace): enough of RFC 8259 to
// check that every exported line parses as exactly one value. Used by the
// `experiments trace` subcommand and the CI trace smoke.
// ---------------------------------------------------------------------------

/// Validate that `line` is exactly one well-formed JSON value.
pub fn validate_json_line(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!(
                                        "bad \\u escape at byte {pos}",
                                        pos = *pos
                                    ))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            0x00..=0x1f => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {pos}", pos = *pos));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("expected fraction digits at byte {pos}", pos = *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("expected exponent digits at byte {pos}", pos = *pos));
        }
    }
    debug_assert!(*pos > start);
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(at(1), Some(3), TraceKind::TaskAdmit, &[]);
        t.count("x", 5);
        let snap = t.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.recorded, 0);
        assert_eq!(t.counter("x"), 0);
        assert!(t.export_jsonl().is_empty());
    }

    #[test]
    fn ring_overflow_drops_oldest_and_accounts() {
        let t = Tracer::bounded(3);
        for i in 0..5u64 {
            t.emit(at(i), None, TraceKind::TaskAdmit, &[("i", TraceValue::U64(i))]);
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped, 2);
        assert_eq!(snap.recorded, 5);
        assert_eq!(snap.events[0].t, at(2), "oldest two were evicted");
    }

    #[test]
    fn severity_filter_rejects_below_minimum() {
        let t = Tracer::bounded(16).with_min_severity(Severity::Warn);
        t.emit(at(0), None, TraceKind::PledgeSend, &[]); // debug
        t.emit(at(0), None, TraceKind::TaskAdmit, &[]); // info
        t.emit(at(0), None, TraceKind::NodeKill, &[]); // warn
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, TraceKind::NodeKill);
        assert_eq!(snap.filtered, 2);
    }

    #[test]
    fn kind_filter_is_an_allow_list() {
        let t = Tracer::bounded(16).with_kinds(&[TraceKind::HelpFlood, TraceKind::NodeKill]);
        t.emit(at(0), None, TraceKind::HelpFlood, &[]);
        t.emit(at(0), None, TraceKind::TaskAdmit, &[]);
        t.emit(at(0), None, TraceKind::NodeKill, &[]);
        let kinds: Vec<_> = t.snapshot().events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![TraceKind::HelpFlood, TraceKind::NodeKill]);
    }

    #[test]
    fn every_kind_exports_a_valid_json_line() {
        let t = Tracer::bounded(64);
        for kind in TraceKind::ALL {
            t.emit(
                SimTime::from_secs_f64(1.25),
                Some(7),
                kind,
                &[
                    ("count", TraceValue::U64(3)),
                    ("secs", TraceValue::F64(2.5)),
                    ("why", TraceValue::Str("time\"out\\")),
                    ("ok", TraceValue::Bool(true)),
                ],
            );
        }
        let jsonl = t.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), TraceKind::ALL.len());
        for line in lines {
            validate_json_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert!(line.contains("\"kind\":\""));
        }
    }

    #[test]
    fn kind_labels_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in TraceKind::ALL {
            assert!(seen.insert(kind.as_str()), "duplicate label {}", kind.as_str());
        }
    }

    #[test]
    fn registry_counts_and_gauges() {
        let t = Tracer::bounded(4);
        t.count("tasks", 2);
        t.count("tasks", 3);
        t.count_node("admitted", 4, 1);
        t.count_node("admitted", 4, 1);
        t.count_node("admitted", 9, 5);
        t.gauge_max("hw", 3.0);
        t.gauge_max("hw", 1.0); // lower: ignored
        t.gauge_set("level", 0.5);
        let reg = t.snapshot().registry;
        assert_eq!(reg.counter("tasks"), 5);
        assert_eq!(reg.counter("absent"), 0);
        assert_eq!(reg.node_counter("admitted", 4), 2);
        assert_eq!(reg.node_total("admitted"), 7);
        assert_eq!(reg.gauge("hw"), Some(3.0));
        assert_eq!(reg.gauge("level"), Some(0.5));
        validate_json_line(&reg.to_json()).unwrap();
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            r#"{"a":[1,2,{"b":"c\né"}],"d":null,"e":false}"#,
            "  {\"x\": 1}  ",
        ] {
            validate_json_line(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "01x",
            "\"unterminated",
            "{\"a\":1} extra",
            "{'a':1}",
            "{\"a\":1,}",
            "1.},",
            "nul",
        ] {
            assert!(validate_json_line(bad).is_err(), "accepted invalid: {bad}");
        }
    }

    #[test]
    fn handles_share_one_buffer() {
        let t = Tracer::bounded(8);
        let clone = t.clone();
        clone.emit(at(1), Some(0), TraceKind::TaskAdmit, &[]);
        t.count("n", 1);
        assert_eq!(t.snapshot().events.len(), 1);
        assert_eq!(clone.counter("n"), 1);
    }
}
