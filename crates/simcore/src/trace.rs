//! Deterministic structured tracing and the named-counter registry (A14).
//!
//! Every layer of the stack (protocol state machines, the simulated world,
//! the host model) can emit typed [`TraceEvent`]s through a shared
//! [`Tracer`] handle. The tracer is a pure *observer*:
//!
//! * **Disabled by default.** [`Tracer::disabled`] carries no state at all;
//!   every emit is an early return. Enabling tracing never touches an RNG
//!   stream, the event queue, or any simulation state, so traced runs are
//!   bit-for-bit identical to untraced runs (pinned by
//!   `tests/trace_parity.rs`).
//! * **Bounded.** Events land in a ring buffer of fixed capacity; when it
//!   overflows the oldest event is dropped and [`TraceSnapshot::dropped`]
//!   accounts for it, so a long run can never exhaust memory.
//! * **Filtered.** A minimum [`Severity`] and an optional [`TraceKind`]
//!   allow-list are applied at emit time; filtered events cost one enum
//!   compare and are never materialized.
//! * **Exportable.** [`TraceEvent::to_json_line`] renders one hand-rolled
//!   JSON object per event (the workspace has no serde);
//!   [`validate_json_line`] is the matching in-tree checker used by the CI
//!   trace smoke.
//!
//! The same handle carries the [`registry::CounterRegistry`] of named
//! monotonic counters and gauges. The simulator bumps a counter at exactly
//! the sites that mutate the corresponding `SimResult` field, so registry
//! totals reconcile 1:1 against the run ledger
//! (`tests/trace_reconciliation.rs`).
//!
//! The handle is cheaply cloneable (`Arc`) and `Send + Sync`: one tracer can
//! observe all 25 protocol instances plus the world. The interior mutex is
//! uncontended in the single-threaded simulator.
//!
//! **Causal spans (A19).** Events may carry an optional `(span, parent)`
//! link: a [`TaskLineage`] identifies one task's whole journey (its span id
//! is even), while each migration-negotiation attempt gets its own odd span
//! ([`attempt_span`]) parented to the task. The chain
//! admission → negotiation → remote admission → interruption → recovery is
//! then reconstructable from the JSONL export alone, in both the DES and
//! the threaded cluster (`experiments analyze`).

use crate::time::SimTime;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Event severity, ordered `Debug < Info < Warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Per-message noise (pledge traffic, refreshes, watermarks).
    Debug,
    /// Protocol and lifecycle milestones.
    Info,
    /// Losses: kills, interruptions, destroyed work, confirmed deaths.
    Warn,
}

impl Severity {
    /// Lower-case label used in the JSON export.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
        }
    }
}

/// The typed event vocabulary of the whole stack.
///
/// Protocol kinds are emitted by `realtor-core`, task/attack kinds by
/// `realtor-sim::world`, queue/checkpoint kinds from `realtor-node` data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum TraceKind {
    /// Algorithm H flooded a HELP (community invitation/refresh).
    HelpFlood,
    /// Algorithm H changed `HELP_interval` (penalty or reward).
    IntervalAdapt,
    /// A PLEDGE was sent (help answer or unsolicited threshold crossing).
    PledgeSend,
    /// A fresh PLEDGE was folded into the availability store.
    PledgeAccept,
    /// A stale/duplicate PLEDGE was rejected by the watermark.
    PledgeStaleDrop,
    /// First HELP from an organizer: joined its community.
    CommunityJoin,
    /// A repeat HELP extended an existing membership.
    CommunityRefresh,
    /// Soft-state memberships aged out.
    CommunityExpire,
    /// Failure detector: a silent peer became *suspect*.
    PeerSuspect,
    /// Failure detector: a suspect was *confirmed* dead.
    PeerConfirmed,
    /// A confirmed-dead peer was heard from again (false suspicion heals).
    PeerRevived,
    /// A task was admitted into a queue (locally or at a migration target).
    TaskAdmit,
    /// A task was rejected (dead node, oversize, no candidate, or refusal).
    TaskReject,
    /// A migration negotiation was launched.
    MigrateStart,
    /// A migration negotiation resolved (any kind: arrival/recovery/evac).
    MigrateResolve,
    /// A kill interrupted admitted-but-unfinished tasks.
    TaskInterrupt,
    /// An interrupted task's checkpoint was re-admitted somewhere.
    TaskRecover,
    /// An interrupted task was destroyed for good.
    TaskDestroy,
    /// A warned node started evacuating one pending task.
    EvacuationStart,
    /// A scripted attack event fired.
    AttackAction,
    /// A node was killed.
    NodeKill,
    /// A dead node was restored.
    NodeRestore,
    /// A work queue reached a new lifetime backlog high-water mark.
    QueueWatermark,
    /// A kill split the task log into checkpoints and destroyed work.
    CheckpointSplit,
}

impl TraceKind {
    /// Every kind, in declaration order.
    pub const ALL: [TraceKind; 24] = [
        TraceKind::HelpFlood,
        TraceKind::IntervalAdapt,
        TraceKind::PledgeSend,
        TraceKind::PledgeAccept,
        TraceKind::PledgeStaleDrop,
        TraceKind::CommunityJoin,
        TraceKind::CommunityRefresh,
        TraceKind::CommunityExpire,
        TraceKind::PeerSuspect,
        TraceKind::PeerConfirmed,
        TraceKind::PeerRevived,
        TraceKind::TaskAdmit,
        TraceKind::TaskReject,
        TraceKind::MigrateStart,
        TraceKind::MigrateResolve,
        TraceKind::TaskInterrupt,
        TraceKind::TaskRecover,
        TraceKind::TaskDestroy,
        TraceKind::EvacuationStart,
        TraceKind::AttackAction,
        TraceKind::NodeKill,
        TraceKind::NodeRestore,
        TraceKind::QueueWatermark,
        TraceKind::CheckpointSplit,
    ];

    /// Snake-case label used in the JSON export and summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::HelpFlood => "help_flood",
            TraceKind::IntervalAdapt => "interval_adapt",
            TraceKind::PledgeSend => "pledge_send",
            TraceKind::PledgeAccept => "pledge_accept",
            TraceKind::PledgeStaleDrop => "pledge_stale_drop",
            TraceKind::CommunityJoin => "community_join",
            TraceKind::CommunityRefresh => "community_refresh",
            TraceKind::CommunityExpire => "community_expire",
            TraceKind::PeerSuspect => "peer_suspect",
            TraceKind::PeerConfirmed => "peer_confirmed",
            TraceKind::PeerRevived => "peer_revived",
            TraceKind::TaskAdmit => "task_admit",
            TraceKind::TaskReject => "task_reject",
            TraceKind::MigrateStart => "migrate_start",
            TraceKind::MigrateResolve => "migrate_resolve",
            TraceKind::TaskInterrupt => "task_interrupt",
            TraceKind::TaskRecover => "task_recover",
            TraceKind::TaskDestroy => "task_destroy",
            TraceKind::EvacuationStart => "evacuation_start",
            TraceKind::AttackAction => "attack_action",
            TraceKind::NodeKill => "node_kill",
            TraceKind::NodeRestore => "node_restore",
            TraceKind::QueueWatermark => "queue_watermark",
            TraceKind::CheckpointSplit => "checkpoint_split",
        }
    }

    /// The default severity this kind is emitted at.
    pub fn severity(self) -> Severity {
        match self {
            TraceKind::PledgeSend
            | TraceKind::PledgeAccept
            | TraceKind::PledgeStaleDrop
            | TraceKind::CommunityRefresh
            | TraceKind::QueueWatermark => Severity::Debug,
            TraceKind::TaskInterrupt
            | TraceKind::TaskDestroy
            | TraceKind::NodeKill
            | TraceKind::AttackAction
            | TraceKind::PeerConfirmed => Severity::Warn,
            _ => Severity::Info,
        }
    }

    /// One-hot bit for kind-mask filtering.
    fn bit(self) -> u32 {
        1u32 << (self as u32)
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceValue {
    /// Unsigned integer (counts, ids).
    U64(u64),
    /// Float (seconds of work, intervals, probabilities).
    F64(f64),
    /// Static label (causes, reasons, attack kinds).
    Str(&'static str),
    /// Boolean flag.
    Bool(bool),
}

impl TraceValue {
    fn write_json(&self, out: &mut String) {
        match *self {
            TraceValue::U64(v) => out.push_str(&v.to_string()),
            TraceValue::F64(v) => out.push_str(&fmt_f64(v)),
            TraceValue::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            TraceValue::Bool(b) => out.push_str(if b { "true" } else { "false" }),
        }
    }
}

/// A non-finite float has no JSON number form; exported as `null`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Causal identity of one task journey (A19).
///
/// Assigned at the task's first appearance (its arrival, derived from the
/// deterministic arrival-trace index) and carried unchanged through
/// migration, interruption, and recovery — the whole
/// discovery→admission→recovery chain of a task shares one lineage. The
/// lineage doubles as the task's *span* id via [`TaskLineage::span`]:
/// task-level spans are even, so negotiation-attempt spans
/// ([`attempt_span`]) can share the same id space on the odd side without
/// collisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskLineage(pub u64);

impl TaskLineage {
    /// The task-level span id for this lineage (even half of the id space).
    #[inline]
    pub fn span(self) -> u64 {
        self.0 << 1
    }
}

/// Span id of one migration-negotiation attempt (odd half of the id
/// space, keyed by the world's monotonically assigned attempt number so
/// it never collides with a [`TaskLineage::span`]).
#[inline]
pub fn attempt_span(attempt: u64) -> u64 {
    (attempt << 1) | 1
}

/// Most fields any one event carries; checked at every emit site by a
/// debug assertion (the widest emitter in the tree uses exactly this
/// many). Kept tight because every ring slot stores this many inline —
/// widening the array widens the per-emit copy.
pub const MAX_FIELDS: usize = 4;

/// Inline storage for an event's typed fields.
///
/// Events are recorded on the simulator's hot path — one or more per
/// delivered message — so their field lists live inline in the ring slot
/// rather than behind a per-event heap allocation. Dereferences to a slice,
/// so call sites read it exactly like a `Vec`.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldVec {
    len: u8,
    items: [(&'static str, TraceValue); MAX_FIELDS],
}

impl FieldVec {
    const EMPTY_SLOT: (&'static str, TraceValue) = ("", TraceValue::Bool(false));

    /// Copy `fields` into inline storage (at most [`MAX_FIELDS`]; excess
    /// is debug-asserted and truncated).
    pub fn from_slice(fields: &[(&'static str, TraceValue)]) -> Self {
        debug_assert!(
            fields.len() <= MAX_FIELDS,
            "an event carries at most {MAX_FIELDS} fields"
        );
        let mut items = [Self::EMPTY_SLOT; MAX_FIELDS];
        let n = fields.len().min(MAX_FIELDS);
        items[..n].copy_from_slice(&fields[..n]);
        FieldVec {
            len: n as u8,
            items,
        }
    }
}

impl std::ops::Deref for FieldVec {
    type Target = [(&'static str, TraceValue)];

    fn deref(&self) -> &Self::Target {
        &self.items[..self.len as usize]
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub t: SimTime,
    /// Node the event concerns (`None` for world-level events).
    pub node: Option<usize>,
    /// What happened.
    pub kind: TraceKind,
    /// Causal span this event belongs to (`None` for unspanned events).
    pub span: Option<u64>,
    /// Parent span, linking this span into its causal chain.
    pub parent: Option<u64>,
    /// Typed key/value details; keys are static and unique per kind.
    pub fields: FieldVec,
}

impl TraceEvent {
    /// Severity the event was emitted at (derived from its kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }

    /// Render the event as one flat JSON object (no trailing newline):
    /// `{"t":<ticks>,"t_secs":<f64>,"node":<id|null>,"kind":"...",
    /// "sev":"..."[,"span":<id>][,"parent":<id>],<fields...>}`.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"t\":");
        out.push_str(&self.t.ticks().to_string());
        out.push_str(",\"t_secs\":");
        out.push_str(&fmt_f64(self.t.as_secs_f64()));
        out.push_str(",\"node\":");
        match self.node {
            Some(n) => out.push_str(&n.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"sev\":\"");
        out.push_str(self.severity().as_str());
        out.push('"');
        if let Some(span) = self.span {
            out.push_str(",\"span\":");
            out.push_str(&span.to_string());
        }
        if let Some(parent) = self.parent {
            out.push_str(",\"parent\":");
            out.push_str(&parent.to_string());
        }
        for (k, v) in self.fields.iter() {
            out.push_str(",\"");
            escape_into(k, &mut out);
            out.push_str("\":");
            v.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

/// Point-in-time copy of everything a tracer has collected.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Buffered events, oldest first (at most the ring capacity).
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring after it filled.
    pub dropped: u64,
    /// Events that passed the filters over the tracer's lifetime
    /// (buffered + dropped).
    pub recorded: u64,
    /// Events rejected by the severity/kind filters.
    pub filtered: u64,
    /// The counter/gauge registry.
    pub registry: registry::CounterRegistry,
}

/// Mutex-protected leftovers: gauges and the counter-table overflow.
/// Nothing on the per-event hot path touches this lock.
struct TraceState {
    registry: registry::CounterRegistry,
}

/// Lock-free bounded overwrite ring for trace events.
///
/// An emit claims a logical index with one relaxed `fetch_add`, claims the
/// target slot's seqlock with one CAS, writes the payload, and publishes
/// with a release store — no mutex anywhere on the recording path, which
/// is what keeps the traced-over-untraced throughput ratio inside the CI
/// gate. Readers validate each slot's generation before *and* after
/// copying, so a snapshot racing an overwrite skips exactly the oldest
/// events being evicted and never observes a torn payload.
///
/// Slot count is the requested capacity rounded up to a power of two (the
/// index map stays a mask), but eviction accounting uses the *logical*
/// capacity so `bounded(n)` retains the last `n` events exactly as the
/// documented contract says. Payload cells start uninitialized; the slot
/// seqlock proves initialization before any read.
struct EventRing {
    /// Logical capacity: how many most-recent events a snapshot returns.
    capacity: usize,
    /// `log2` of the physical slot count (`capacity` rounded up to a
    /// power of two), so index and generation are a mask and a shift.
    shift: u32,
    /// Per-slot seqlock words, in their own dense array: an emit's only
    /// atomic RMW lands on a line shared by 8 slots, so sequential emits
    /// keep it warm — an RMW straight into the (cold, 4-cache-line) slot
    /// payload would stall the pipeline for a DRAM round trip, which is
    /// exactly the cost profile the overhead gate rejects. Values: `2g` =
    /// ready for the round-`g` writer (0 = never written), `2g + 1` =
    /// round-`g` write in flight, `2g + 2` = round-`g` payload valid.
    seqs: Box<[AtomicU64]>,
    /// Slot payloads; plain store-buffered writes, never an atomic RMW.
    slots: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]>,
    /// Total events ever claimed; the logical index of the next event.
    cursor: AtomicU64,
    /// Claims abandoned because a prior-round writer stalled inside the
    /// slot for a whole ring revolution (pathological; counted dropped).
    abandoned: AtomicU64,
}

// SAFETY: concurrent access to a slot is mediated by its `seqs` word
// (writers hold an exclusive CAS claim; readers copy bytes and discard
// the copy unless the word proves the slot stayed untouched), and
// `TraceEvent` is plain data — no `Drop`, no interior references.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    fn new(capacity: usize) -> Self {
        let physical = capacity.next_power_of_two();
        let mut slots: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]> = (0..physical)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        // Pre-fault the payload pages: uninit cells write no bytes above,
        // so without this the first emit into each fresh 4 KiB page would
        // take a zero-fill page fault inside the simulator's hot loop —
        // hundreds of faults per run, charged to exactly the window the
        // tracing-overhead gate times. SAFETY: zero bytes are never read
        // as a `TraceEvent` (reads require a published seqlock word).
        unsafe {
            std::ptr::write_bytes(
                slots.as_mut_ptr().cast::<u8>(),
                0,
                physical * std::mem::size_of::<UnsafeCell<MaybeUninit<TraceEvent>>>(),
            );
        }
        EventRing {
            capacity,
            shift: physical.trailing_zeros(),
            seqs: (0..physical).map(|_| AtomicU64::new(0)).collect(),
            slots,
            cursor: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
        }
    }

    /// Record one event, overwriting the oldest once full.
    #[inline]
    fn push(&self, ev: TraceEvent) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        let idx = (i & (self.slots.len() as u64 - 1)) as usize;
        let gen = i >> self.shift;
        let seq = &self.seqs[idx];
        let (ready, writing) = (2 * gen, 2 * gen + 1);
        let mut claimed = seq
            .compare_exchange(ready, writing, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if !claimed {
            // The round-(g-1) writer is still inside the slot: it has been
            // preempted for a full ring revolution. Give it a moment, then
            // drop this event rather than block a real-time path.
            for _ in 0..64 {
                std::hint::spin_loop();
                if seq
                    .compare_exchange(ready, writing, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    claimed = true;
                    break;
                }
            }
        }
        if !claimed {
            self.abandoned.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: the CAS above grants this thread exclusive write access
        // to the cell until the release store below publishes it.
        unsafe { (*self.slots[idx].get()).write(ev) };
        seq.store(2 * gen + 2, Ordering::Release);
    }

    /// Copy out the retained events oldest-first, plus the cursor (total
    /// recorded) and the abandoned-claim count.
    fn collect(&self) -> (Vec<TraceEvent>, u64, u64) {
        let cursor = self.cursor.load(Ordering::Acquire);
        let lo = cursor.saturating_sub(self.capacity as u64);
        let mut out = Vec::with_capacity((cursor - lo) as usize);
        for i in lo..cursor {
            let idx = (i & (self.slots.len() as u64 - 1)) as usize;
            let want = 2 * (i >> self.shift) + 2;
            if self.seqs[idx].load(Ordering::Acquire) != want {
                continue;
            }
            // SAFETY: the generation check above proves a round-`g` writer
            // fully initialized the cell. A racing next-round writer may
            // scribble while we copy; the bitwise volatile copy never
            // dereferences anything inside the payload, and the re-check
            // below discards the copy unless the slot stayed untouched
            // (seq values only grow, so a stable value rules out reuse).
            let ev = unsafe { std::ptr::read_volatile(self.slots[idx].get()) };
            if self.seqs[idx].load(Ordering::Acquire) != want {
                continue;
            }
            // SAFETY: seq was stable across the copy, so these bytes are
            // the fully initialized round-`g` payload.
            out.push(unsafe { ev.assume_init() });
        }
        (out, cursor, self.abandoned.load(Ordering::Relaxed))
    }
}

/// Sentinel `node` code marking a slot in [`AtomicCounters`] as a global
/// (not per-node) counter. No simulation addresses `usize::MAX` nodes.
const GLOBAL_COUNTER: usize = usize::MAX;

/// Lock-free open-addressed counter table, keyed by the *pointer* of the
/// `&'static str` counter name plus a node code.
///
/// Counter bumps happen several times per simulator event, so they must
/// not take the ring mutex. Pointer keying makes the probe a couple of
/// relaxed loads plus one relaxed `fetch_add`; the same name reaching the
/// table through two different literal addresses simply occupies two
/// slots, and [`AtomicCounters::fold_into`] re-aggregates by string
/// content, so duplicates are a space cost, never a correctness cost.
/// A full table falls back to the mutex-protected registry.
struct AtomicCounters {
    /// `&'static str` data pointer of the name; 0 = empty slot.
    keys: Box<[AtomicUsize]>,
    /// Name length; 0 until the claimant publishes it (real names are
    /// never empty), so readers skip half-claimed slots.
    lens: Box<[AtomicUsize]>,
    /// Node id, or [`GLOBAL_COUNTER`].
    nodes: Box<[AtomicUsize]>,
    /// The counter value.
    vals: Box<[AtomicU64]>,
}

impl AtomicCounters {
    /// Slot count; power of two so the probe mask is an AND. 4096 slots
    /// comfortably hold every (name, node) pair even for chaos-scale
    /// meshes (hundreds of nodes x a handful of per-node counters).
    const SLOTS: usize = 4096;

    fn new() -> Self {
        AtomicCounters {
            keys: (0..Self::SLOTS).map(|_| AtomicUsize::new(0)).collect(),
            lens: (0..Self::SLOTS).map(|_| AtomicUsize::new(0)).collect(),
            nodes: (0..Self::SLOTS).map(|_| AtomicUsize::new(0)).collect(),
            vals: (0..Self::SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn slot_of(ptr: usize, node: usize) -> usize {
        // Fibonacci hashing over the pointer and node; pointers are at
        // least byte-aligned into the binary's rodata so the low bits
        // carry entropy after mixing.
        (ptr ^ node.rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52
    }

    /// Add `n` to `(name, node)`. Returns `false` when the table is full
    /// and the caller must fall back to the locked registry.
    fn bump(&self, name: &'static str, node: usize, n: u64) -> bool {
        let ptr = name.as_ptr() as usize;
        let mask = Self::SLOTS - 1;
        let mut idx = Self::slot_of(ptr, node) & mask;
        for _ in 0..Self::SLOTS {
            let key = self.keys[idx].load(Ordering::Acquire);
            if key == ptr && self.nodes[idx].load(Ordering::Relaxed) == node {
                self.vals[idx].fetch_add(n, Ordering::Relaxed);
                return true;
            }
            if key == 0 {
                // Claim the slot; a lost race probes on (possibly creating
                // a duplicate (name, node) slot — merged at read time).
                if self.keys[idx]
                    .compare_exchange(0, ptr, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    self.nodes[idx].store(node, Ordering::Relaxed);
                    self.lens[idx].store(name.len(), Ordering::Release);
                    self.vals[idx].fetch_add(n, Ordering::Relaxed);
                    return true;
                }
                if self.keys[idx].load(Ordering::Acquire) == ptr
                    && self.nodes[idx].load(Ordering::Relaxed) == node
                {
                    self.vals[idx].fetch_add(n, Ordering::Relaxed);
                    return true;
                }
            }
            idx = (idx + 1) & mask;
        }
        false
    }

    /// Reconstruct the name of a published slot.
    ///
    /// SAFETY of the `unsafe` below: `keys[idx]`/`lens[idx]` only ever
    /// hold the pointer and length of a `&'static str` passed to
    /// [`AtomicCounters::bump`], published in that order (len last, with
    /// release/acquire pairing), so a non-zero length proves both fields
    /// describe one live `'static` string.
    fn slot_name(&self, idx: usize) -> Option<&'static str> {
        let key = self.keys[idx].load(Ordering::Acquire);
        let len = self.lens[idx].load(Ordering::Acquire);
        if key == 0 || len == 0 {
            return None;
        }
        Some(unsafe {
            std::str::from_utf8_unchecked(std::slice::from_raw_parts(key as *const u8, len))
        })
    }

    /// Sum every published slot into `registry`, re-aggregating by string
    /// content (duplicate pointer-keyed slots for one name merge here).
    fn fold_into(&self, registry: &mut registry::CounterRegistry) {
        for idx in 0..Self::SLOTS {
            let Some(name) = self.slot_name(idx) else {
                continue;
            };
            let val = self.vals[idx].load(Ordering::Relaxed);
            if val == 0 {
                continue;
            }
            match self.nodes[idx].load(Ordering::Relaxed) {
                GLOBAL_COUNTER => registry.add(name, val),
                node => registry.add_node(name, node, val),
            }
        }
    }

    /// Current value of `(name, node)` by string comparison (read path —
    /// scans the table so it tolerates duplicate slots).
    fn read(&self, name: &str, node: usize) -> u64 {
        let mut total = 0;
        for idx in 0..Self::SLOTS {
            if self.slot_name(idx) == Some(name) && self.nodes[idx].load(Ordering::Relaxed) == node
            {
                total += self.vals[idx].load(Ordering::Relaxed);
            }
        }
        total
    }
}

/// Shared tracer core. The severity/kind filters and the filtered-event
/// counter live in atomics *outside* the mutex: a filtered emit — the
/// common case once a filter is set — costs two relaxed loads and one
/// relaxed increment, never a lock.
struct TraceShared {
    /// Minimum severity as `u32` (the `Severity` discriminant order).
    min_severity: AtomicU32,
    /// One-hot allow mask over [`TraceKind`].
    kind_mask: AtomicU32,
    /// Events rejected by the filters.
    filtered: AtomicU64,
    /// Lock-free monotonic counters (global and per-node).
    counters: AtomicCounters,
    /// Lock-free bounded event ring.
    ring: EventRing,
    /// Gauges and counter-table overflow, off the hot path.
    state: Mutex<TraceState>,
}

/// A cloneable tracing handle; see the module docs.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TraceShared>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(_) => write!(f, "Tracer(enabled)"),
        }
    }
}

impl Tracer {
    /// The no-op tracer: every call is an early return, nothing allocates.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer with a ring of `capacity` events, recording every
    /// kind at every severity.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        Tracer {
            inner: Some(Arc::new(TraceShared {
                min_severity: AtomicU32::new(Severity::Debug as u32),
                kind_mask: AtomicU32::new(u32::MAX),
                filtered: AtomicU64::new(0),
                counters: AtomicCounters::new(),
                ring: EventRing::new(capacity),
                state: Mutex::new(TraceState {
                    registry: registry::CounterRegistry::new(),
                }),
            })),
        }
    }

    /// Builder-style: drop events below `min` severity.
    pub fn with_min_severity(self, min: Severity) -> Self {
        if let Some(inner) = &self.inner {
            inner.min_severity.store(min as u32, Ordering::Relaxed);
        }
        self
    }

    /// Builder-style: record only the listed kinds.
    pub fn with_kinds(self, kinds: &[TraceKind]) -> Self {
        if let Some(inner) = &self.inner {
            let mask = kinds.iter().fold(0u32, |m, k| m | k.bit());
            inner.kind_mask.store(mask, Ordering::Relaxed);
        }
        self
    }

    /// Is this handle connected to a live buffer?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one event. Filtered or disabled emits never allocate.
    ///
    /// The disabled check is inlined so protocol hot paths (one or more
    /// emits per delivered message) pay a single predicted branch when
    /// tracing is off; the recording path stays out of line.
    #[inline]
    pub fn emit(
        &self,
        t: SimTime,
        node: Option<usize>,
        kind: TraceKind,
        fields: &[(&'static str, TraceValue)],
    ) {
        self.emit_spanned(t, node, kind, None, None, fields);
    }

    /// Would an emit of `kind` be recorded right now? Lets hot call sites
    /// skip building field values for events the filters would drop.
    #[inline]
    pub fn records(&self, kind: TraceKind) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                (kind.severity() as u32) >= inner.min_severity.load(Ordering::Relaxed)
                    && inner.kind_mask.load(Ordering::Relaxed) & kind.bit() != 0
            }
        }
    }

    /// Emit one event carrying a causal `(span, parent)` link; otherwise
    /// identical to [`Tracer::emit`].
    #[inline]
    pub fn emit_spanned(
        &self,
        t: SimTime,
        node: Option<usize>,
        kind: TraceKind,
        span: Option<u64>,
        parent: Option<u64>,
        fields: &[(&'static str, TraceValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        // Filters are read lock-free, inline at the call site; a rejected
        // emit costs two relaxed loads and a non-atomic counter bump. The
        // `filtered` tally uses a load/store pair rather than `fetch_add`:
        // it is a diagnostic (never reconciled), and an atomic RMW per
        // filtered event would dominate the cost of filtering itself. Under
        // concurrent emitters it can undercount; recorded events never can.
        if (kind.severity() as u32) < inner.min_severity.load(Ordering::Relaxed)
            || inner.kind_mask.load(Ordering::Relaxed) & kind.bit() == 0
        {
            inner.filtered.store(
                inner.filtered.load(Ordering::Relaxed) + 1,
                Ordering::Relaxed,
            );
            return;
        }
        // Out of line: the record path is cold relative to the filter
        // check, and inlining a ring write at ~70 call sites measurably
        // bloats the simulator's event loop even when tracing is off.
        Self::record(inner, t, node, kind, span, parent, fields);
    }

    #[inline(never)]
    fn record(
        inner: &TraceShared,
        t: SimTime,
        node: Option<usize>,
        kind: TraceKind,
        span: Option<u64>,
        parent: Option<u64>,
        fields: &[(&'static str, TraceValue)],
    ) {
        inner.ring.push(TraceEvent {
            t,
            node,
            kind,
            span,
            parent,
            fields: FieldVec::from_slice(fields),
        });
    }

    /// Add `n` to the global monotonic counter `name`.
    #[inline]
    pub fn count(&self, name: &'static str, n: u64) {
        if self.inner.is_some() {
            self.count_slow(name, n);
        }
    }

    #[inline(never)]
    fn count_slow(&self, name: &'static str, n: u64) {
        let Some(inner) = &self.inner else { return };
        if !inner.counters.bump(name, GLOBAL_COUNTER, n) {
            inner
                .state
                .lock()
                .expect("trace lock")
                .registry
                .add(name, n);
        }
    }

    /// Add `n` to the per-node monotonic counter `name`.
    #[inline]
    pub fn count_node(&self, name: &'static str, node: usize, n: u64) {
        if self.inner.is_some() {
            self.count_node_slow(name, node, n);
        }
    }

    #[inline(never)]
    fn count_node_slow(&self, name: &'static str, node: usize, n: u64) {
        let Some(inner) = &self.inner else { return };
        if !inner.counters.bump(name, node, n) {
            inner
                .state
                .lock()
                .expect("trace lock")
                .registry
                .add_node(name, node, n);
        }
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner
            .state
            .lock()
            .expect("trace lock")
            .registry
            .gauge_set(name, value);
    }

    /// Raise the gauge `name` to `value` if `value` exceeds it (high-water
    /// semantics).
    pub fn gauge_max(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner
            .state
            .lock()
            .expect("trace lock")
            .registry
            .gauge_max(name, value);
    }

    /// Current value of the global counter `name` (0 when disabled/absent).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => {
                inner.counters.read(name, GLOBAL_COUNTER)
                    + inner
                        .state
                        .lock()
                        .expect("trace lock")
                        .registry
                        .counter(name)
            }
        }
    }

    /// Current value of the per-node counter `name` (0 when
    /// disabled/absent).
    pub fn node_counter(&self, name: &str, node: usize) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => {
                inner.counters.read(name, node)
                    + inner
                        .state
                        .lock()
                        .expect("trace lock")
                        .registry
                        .node_counter(name, node)
            }
        }
    }

    /// Copy out everything collected so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.inner {
            None => TraceSnapshot::default(),
            Some(inner) => {
                // The locked registry holds gauges plus any counters that
                // overflowed the lock-free table; fold the table on top.
                let mut registry = inner.state.lock().expect("trace lock").registry.clone();
                inner.counters.fold_into(&mut registry);
                let (events, recorded, abandoned) = inner.ring.collect();
                TraceSnapshot {
                    events,
                    dropped: recorded.saturating_sub(inner.ring.capacity as u64) + abandoned,
                    recorded,
                    filtered: inner.filtered.load(Ordering::Relaxed),
                    registry,
                }
            }
        }
    }

    /// Render every buffered event as JSON lines (one object per line,
    /// trailing newline included when non-empty).
    pub fn export_jsonl(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for e in &snap.events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// Named monotonic counters and gauges.
pub mod registry {
    use std::collections::BTreeMap;

    /// Registry of named monotonic counters (global and per-node) and
    /// gauges. Deterministic iteration (BTreeMap) so exports are stable.
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct CounterRegistry {
        counters: BTreeMap<&'static str, u64>,
        node_counters: BTreeMap<(&'static str, usize), u64>,
        gauges: BTreeMap<&'static str, f64>,
    }

    impl CounterRegistry {
        /// An empty registry.
        pub fn new() -> Self {
            Self::default()
        }

        /// Add `n` to the global counter `name`.
        pub fn add(&mut self, name: &'static str, n: u64) {
            *self.counters.entry(name).or_insert(0) += n;
        }

        /// Add `n` to the per-node counter `name`.
        pub fn add_node(&mut self, name: &'static str, node: usize, n: u64) {
            *self.node_counters.entry((name, node)).or_insert(0) += n;
        }

        /// Set the gauge `name`.
        pub fn gauge_set(&mut self, name: &'static str, value: f64) {
            self.gauges.insert(name, value);
        }

        /// Raise the gauge `name` to `value` if larger.
        pub fn gauge_max(&mut self, name: &'static str, value: f64) {
            let g = self.gauges.entry(name).or_insert(value);
            if value > *g {
                *g = value;
            }
        }

        /// Global counter value (0 when absent).
        pub fn counter(&self, name: &str) -> u64 {
            self.counters.get(name).copied().unwrap_or(0)
        }

        /// Per-node counter value (0 when absent).
        pub fn node_counter(&self, name: &str, node: usize) -> u64 {
            self.node_counters.get(&(name, node)).copied().unwrap_or(0)
        }

        /// Sum of the per-node counter `name` over all nodes.
        pub fn node_total(&self, name: &str) -> u64 {
            self.node_counters
                .iter()
                .filter(|((n, _), _)| *n == name)
                .map(|(_, &v)| v)
                .sum()
        }

        /// Gauge value (`None` when never set).
        pub fn gauge(&self, name: &str) -> Option<f64> {
            self.gauges.get(name).copied()
        }

        /// All global counters, name-sorted.
        pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
            self.counters.iter().map(|(&k, &v)| (k, v))
        }

        /// All per-node counters, `(name, node)`-sorted.
        pub fn node_counters(&self) -> impl Iterator<Item = (&'static str, usize, u64)> + '_ {
            self.node_counters.iter().map(|(&(k, n), &v)| (k, n, v))
        }

        /// All gauges, name-sorted.
        pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
            self.gauges.iter().map(|(&k, &v)| (k, v))
        }

        /// True when nothing was ever recorded.
        pub fn is_empty(&self) -> bool {
            self.counters.is_empty() && self.node_counters.is_empty() && self.gauges.is_empty()
        }

        /// One JSON object with `counters`, `node_counters` (as
        /// `"name/node"` keys) and `gauges` sub-objects.
        pub fn to_json(&self) -> String {
            let mut out = String::from("{\"counters\":{");
            for (i, (k, v)) in self.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":{v}"));
            }
            out.push_str("},\"node_counters\":{");
            for (i, ((k, node), v)) in self.node_counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}/{node}\":{v}"));
            }
            out.push_str("},\"gauges\":{");
            for (i, (k, v)) in self.gauges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":{}", super::fmt_f64(*v)));
            }
            out.push_str("}}");
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON validator (no serde in the workspace): enough of RFC 8259 to
// check that every exported line parses as exactly one value. Used by the
// `experiments trace` subcommand and the CI trace smoke.
// ---------------------------------------------------------------------------

/// Validate that `line` is exactly one well-formed JSON value.
pub fn validate_json_line(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!("bad \\u escape at byte {pos}", pos = *pos))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}", pos = *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {pos}", pos = *pos));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!(
                "expected fraction digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!(
                "expected exponent digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    debug_assert!(*pos > start);
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(at(1), Some(3), TraceKind::TaskAdmit, &[]);
        t.count("x", 5);
        let snap = t.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.recorded, 0);
        assert_eq!(t.counter("x"), 0);
        assert!(t.export_jsonl().is_empty());
    }

    #[test]
    fn ring_overflow_drops_oldest_and_accounts() {
        let t = Tracer::bounded(3);
        for i in 0..5u64 {
            t.emit(
                at(i),
                None,
                TraceKind::TaskAdmit,
                &[("i", TraceValue::U64(i))],
            );
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped, 2);
        assert_eq!(snap.recorded, 5);
        assert_eq!(snap.events[0].t, at(2), "oldest two were evicted");
    }

    #[test]
    fn severity_filter_rejects_below_minimum() {
        let t = Tracer::bounded(16).with_min_severity(Severity::Warn);
        t.emit(at(0), None, TraceKind::PledgeSend, &[]); // debug
        t.emit(at(0), None, TraceKind::TaskAdmit, &[]); // info
        t.emit(at(0), None, TraceKind::NodeKill, &[]); // warn
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, TraceKind::NodeKill);
        assert_eq!(snap.filtered, 2);
    }

    #[test]
    fn kind_filter_is_an_allow_list() {
        let t = Tracer::bounded(16).with_kinds(&[TraceKind::HelpFlood, TraceKind::NodeKill]);
        t.emit(at(0), None, TraceKind::HelpFlood, &[]);
        t.emit(at(0), None, TraceKind::TaskAdmit, &[]);
        t.emit(at(0), None, TraceKind::NodeKill, &[]);
        let kinds: Vec<_> = t.snapshot().events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![TraceKind::HelpFlood, TraceKind::NodeKill]);
    }

    #[test]
    fn every_kind_exports_a_valid_json_line() {
        let t = Tracer::bounded(64);
        for kind in TraceKind::ALL {
            t.emit(
                SimTime::from_secs_f64(1.25),
                Some(7),
                kind,
                &[
                    ("count", TraceValue::U64(3)),
                    ("secs", TraceValue::F64(2.5)),
                    ("why", TraceValue::Str("time\"out\\")),
                    ("ok", TraceValue::Bool(true)),
                ],
            );
        }
        let jsonl = t.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), TraceKind::ALL.len());
        for line in lines {
            validate_json_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert!(line.contains("\"kind\":\""));
        }
    }

    #[test]
    fn kind_labels_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in TraceKind::ALL {
            assert!(
                seen.insert(kind.as_str()),
                "duplicate label {}",
                kind.as_str()
            );
        }
    }

    #[test]
    fn registry_counts_and_gauges() {
        let t = Tracer::bounded(4);
        t.count("tasks", 2);
        t.count("tasks", 3);
        t.count_node("admitted", 4, 1);
        t.count_node("admitted", 4, 1);
        t.count_node("admitted", 9, 5);
        t.gauge_max("hw", 3.0);
        t.gauge_max("hw", 1.0); // lower: ignored
        t.gauge_set("level", 0.5);
        let reg = t.snapshot().registry;
        assert_eq!(reg.counter("tasks"), 5);
        assert_eq!(reg.counter("absent"), 0);
        assert_eq!(reg.node_counter("admitted", 4), 2);
        assert_eq!(reg.node_total("admitted"), 7);
        assert_eq!(reg.gauge("hw"), Some(3.0));
        assert_eq!(reg.gauge("level"), Some(0.5));
        validate_json_line(&reg.to_json()).unwrap();
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            r#"{"a":[1,2,{"b":"c\né"}],"d":null,"e":false}"#,
            "  {\"x\": 1}  ",
        ] {
            validate_json_line(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "01x",
            "\"unterminated",
            "{\"a\":1} extra",
            "{'a':1}",
            "{\"a\":1,}",
            "1.},",
            "nul",
        ] {
            assert!(validate_json_line(bad).is_err(), "accepted invalid: {bad}");
        }
    }

    #[test]
    fn spanned_events_render_causal_links() {
        let t = Tracer::bounded(8);
        let lineage = TaskLineage(21);
        t.emit_spanned(
            at(1),
            Some(2),
            TraceKind::TaskAdmit,
            Some(lineage.span()),
            None,
            &[],
        );
        t.emit_spanned(
            at(2),
            Some(2),
            TraceKind::MigrateStart,
            Some(attempt_span(5)),
            Some(lineage.span()),
            &[],
        );
        t.emit(at(3), None, TraceKind::NodeKill, &[]);
        let snap = t.snapshot();
        assert_eq!(snap.events[0].span, Some(42), "task spans are even");
        assert_eq!(snap.events[0].parent, None);
        assert_eq!(snap.events[1].span, Some(11), "attempt spans are odd");
        assert_eq!(snap.events[1].parent, Some(42));
        assert_eq!(snap.events[2].span, None, "plain emit stays unspanned");
        let lines: Vec<String> = snap.events.iter().map(|e| e.to_json_line()).collect();
        assert!(lines[1].contains("\"span\":11,\"parent\":42"));
        assert!(!lines[2].contains("span"));
        for line in &lines {
            validate_json_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
    }

    #[test]
    fn task_and_attempt_spans_never_collide() {
        for i in 0..1000u64 {
            assert_eq!(TaskLineage(i).span() % 2, 0);
            assert_eq!(attempt_span(i) % 2, 1);
        }
    }

    #[test]
    fn handles_share_one_buffer() {
        let t = Tracer::bounded(8);
        let clone = t.clone();
        clone.emit(at(1), Some(0), TraceKind::TaskAdmit, &[]);
        t.count("n", 1);
        assert_eq!(t.snapshot().events.len(), 1);
        assert_eq!(clone.counter("n"), 1);
    }
}
