//! Deterministic random-number streams and the distribution samplers the
//! paper's workload needs.
//!
//! Every stochastic component of a simulation draws from its own named
//! stream, derived from the master seed with a splitmix64 hash. Adding a new
//! random component therefore never perturbs the draws of existing ones — a
//! property that keeps protocol comparisons paired (all five protocols in the
//! paper's Figure 5 see the *same* arrival sequence).
//!
//! `rand_distr` is not part of the approved offline dependency set, so the
//! exponential / Poisson / Pareto samplers are implemented here directly with
//! textbook inverse-CDF and counting transforms (see DESIGN.md §3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// splitmix64 finalizer; used to derive independent stream seeds.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a stream label into a 64-bit value (FNV-1a).
#[inline]
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Root stream for a master seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// Derive an independent named sub-stream (e.g. `"arrivals"`,
    /// `"task-sizes"`, `"node-choice"`).
    pub fn stream(seed: u64, label: &str) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(splitmix64(seed ^ hash_label(label))),
        }
    }

    /// Derive an independent indexed sub-stream (e.g. one per node).
    pub fn indexed_stream(seed: u64, label: &str, index: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(splitmix64(
                seed ^ hash_label(label) ^ splitmix64(index.wrapping_add(1)),
            )),
        }
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform unsigned integer.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.inner.random::<u64>()
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        self.inner.random_range(0..n)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponential variate with the given mean (inverse-CDF transform).
    ///
    /// This is the paper's task-length distribution ("exponentially
    /// distributed lengths of a mean value [5 s]") and, with
    /// `mean = 1/lambda`, the inter-arrival time of a Poisson process.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // 1 - f64() is in (0, 1], so ln() is finite and <= 0.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Poisson-distributed count with mean `lambda`.
    ///
    /// Knuth's product-of-uniforms method for small means; for large means a
    /// normal approximation with continuity correction (error negligible for
    /// lambda > 30, and this workspace only uses counts for batch scenarios).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson mean must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut k: u64 = 0;
            let mut p = 1.0;
            loop {
                p *= self.f64();
                if p <= limit {
                    return k;
                }
                k += 1;
            }
        } else {
            let g = self.gaussian();
            let v = lambda + lambda.sqrt() * g + 0.5;
            if v < 0.0 {
                0
            } else {
                v.floor() as u64
            }
        }
    }

    /// Standard normal variate (Box–Muller; one of the pair is discarded to
    /// keep the stream stateless).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = 1.0 - self.f64(); // in (0, 1]
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Pareto variate with scale `x_min > 0` and shape `alpha > 0`.
    ///
    /// Used by the heavy-tailed workload extension.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0, "pareto parameters must be positive");
        x_min / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Choose `k` distinct indices out of `0..n` (partial Fisher–Yates).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = SimRng::stream(42, "arrivals");
        let mut b = SimRng::stream(42, "sizes");
        let same = (0..32).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn indexed_streams_differ() {
        let mut a = SimRng::indexed_stream(7, "node", 0);
        let mut b = SimRng::indexed_stream(7, "node", 1);
        assert_ne!(a.u64(), b.u64());
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::from_seed(1);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn exp_is_positive() {
        let mut r = SimRng::from_seed(2);
        assert!((0..10_000).all(|_| r.exp(0.001) > 0.0));
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = SimRng::from_seed(3);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.poisson(2.5)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut r = SimRng::from_seed(4);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.poisson(100.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn bernoulli_edges() {
        let mut r = SimRng::from_seed(5);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        let hits = (0..100_000).filter(|_| r.bernoulli(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = SimRng::from_seed(6);
        for _ in 0..100 {
            let s = r.sample_indices(25, 10);
            assert_eq!(s.len(), 10);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10);
            assert!(s.iter().all(|&i| i < 25));
        }
        assert_eq!(r.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::from_seed(7);
        assert!((0..10_000).all(|_| r.pareto(2.0, 1.5) >= 2.0));
    }
}
