//! Deterministic random-number streams and the distribution samplers the
//! paper's workload needs.
//!
//! Every stochastic component of a simulation draws from its own named
//! stream, derived from the master seed with a splitmix64 hash. Adding a new
//! random component therefore never perturbs the draws of existing ones — a
//! property that keeps protocol comparisons paired (all five protocols in the
//! paper's Figure 5 see the *same* arrival sequence).
//!
//! The generator core is an in-tree xoshiro256++ (Blackman & Vigna), state
//! seeded by a splitmix64 chain — no external crates, so the whole workspace
//! builds and tests offline. Its byte-for-byte output is pinned by
//! golden-value tests below; changing the core is a breaking change for
//! every recorded experiment seed.
//!
//! The exponential / Poisson / Pareto samplers are implemented here directly
//! with textbook inverse-CDF and counting transforms (see DESIGN.md §3).

/// splitmix64 finalizer; used to derive independent stream seeds and to
/// expand a 64-bit seed into xoshiro's 256-bit state.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a stream label into a 64-bit value (FNV-1a).
#[inline]
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Derive an independent child seed from a parent seed and a label.
///
/// This is the **stream split** used for hermetic per-cell seeding in the
/// parallel sweep runner: every cell of a sweep grid labels itself with its
/// own coordinates (protocol, λ, loss, …) and receives
/// `child_seed(grid_seed, &cell_label)` as its world seed. Because the
/// derivation is a pure function of `(parent, label)` — never of the cell's
/// *position* in the grid — reordering the grid or adding new cells can
/// never perturb the RNG streams of existing cells.
///
/// The derivation is `splitmix64(parent ^ fnv1a(label))`, i.e. exactly the
/// state-seed that [`SimRng::stream`] feeds its xoshiro expansion, so child
/// seeds inherit the same independence argument as named streams. Its
/// byte-for-byte output is pinned by golden tests below; changing it is a
/// breaking change for every recorded sweep.
#[inline]
pub fn child_seed(parent: u64, label: &str) -> u64 {
    splitmix64(parent ^ hash_label(label))
}

/// Derive an independent child seed from a parent seed, a label and an
/// index (e.g. one seed per replication of a sweep cell).
///
/// Mirrors [`SimRng::indexed_stream`]'s mixing; pinned by golden tests.
#[inline]
pub fn indexed_child_seed(parent: u64, label: &str, index: u64) -> u64 {
    splitmix64(parent ^ hash_label(label) ^ splitmix64(index.wrapping_add(1)))
}

/// A deterministic random stream (xoshiro256++ core).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Expand a 64-bit seed into the 256-bit state via a splitmix64 chain
    /// (the seeding procedure recommended by the xoshiro authors).
    fn seed_state(seed: u64) -> [u64; 4] {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(sm);
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        if s == [0, 0, 0, 0] {
            // xoshiro's only forbidden state; unreachable from splitmix64
            // output in practice, guarded anyway.
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        s
    }

    /// Root stream for a master seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            s: Self::seed_state(splitmix64(seed)),
        }
    }

    /// Derive an independent named sub-stream (e.g. `"arrivals"`,
    /// `"task-sizes"`, `"node-choice"`).
    pub fn stream(seed: u64, label: &str) -> Self {
        SimRng {
            s: Self::seed_state(splitmix64(seed ^ hash_label(label))),
        }
    }

    /// Derive an independent indexed sub-stream (e.g. one per node).
    pub fn indexed_stream(seed: u64, label: &str, index: u64) -> Self {
        SimRng {
            s: Self::seed_state(splitmix64(
                seed ^ hash_label(label) ^ splitmix64(index.wrapping_add(1)),
            )),
        }
    }

    /// Uniform unsigned integer (the xoshiro256++ step function).
    #[inline]
    pub fn u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero. Unbiased (Lemire's
    /// widening-multiply method with rejection).
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        let n = n as u64;
        let mut m = u128::from(self.u64()) * u128::from(n);
        if (m as u64) < n {
            let t = n.wrapping_neg() % n;
            while (m as u64) < t {
                m = u128::from(self.u64()) * u128::from(n);
            }
        }
        (m >> 64) as usize
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "range_f64 requires lo < hi");
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponential variate with the given mean (inverse-CDF transform).
    ///
    /// This is the paper's task-length distribution ("exponentially
    /// distributed lengths of a mean value [5 s]") and, with
    /// `mean = 1/lambda`, the inter-arrival time of a Poisson process.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // 1 - f64() is in (0, 1], so ln() is finite and <= 0.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Poisson-distributed count with mean `lambda`.
    ///
    /// Knuth's product-of-uniforms method for small means; for large means a
    /// normal approximation with continuity correction (error negligible for
    /// lambda > 30, and this workspace only uses counts for batch scenarios).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson mean must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut k: u64 = 0;
            let mut p = 1.0;
            loop {
                p *= self.f64();
                if p <= limit {
                    return k;
                }
                k += 1;
            }
        } else {
            let g = self.gaussian();
            let v = lambda + lambda.sqrt() * g + 0.5;
            if v < 0.0 {
                0
            } else {
                v.floor() as u64
            }
        }
    }

    /// Standard normal variate (Box–Muller; one of the pair is discarded to
    /// keep the stream stateless).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = 1.0 - self.f64(); // in (0, 1]
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Pareto variate with scale `x_min > 0` and shape `alpha > 0`.
    ///
    /// Used by the heavy-tailed workload extension.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(
            x_min > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        x_min / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Choose `k` distinct indices out of `0..n` (partial Fisher–Yates).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = SimRng::stream(42, "arrivals");
        let mut b = SimRng::stream(42, "sizes");
        let same = (0..32).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn indexed_streams_differ() {
        let mut a = SimRng::indexed_stream(7, "node", 0);
        let mut b = SimRng::indexed_stream(7, "node", 1);
        assert_ne!(a.u64(), b.u64());
    }

    /// The xoshiro256++ reference vector from the authors' C source
    /// (https://prng.di.unimi.it/xoshiro256plusplus.c): with state
    /// {1, 2, 3, 4} the first outputs are fixed. This pins the step
    /// function itself, independent of our seeding.
    #[test]
    fn xoshiro_reference_vector() {
        let mut r = SimRng { s: [1, 2, 3, 4] };
        let expected: [u64; 8] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
        ];
        for e in expected {
            assert_eq!(r.u64(), e);
        }
    }

    /// Golden values for the public seeding paths. If any of these change,
    /// every recorded experiment in results/ silently measures a different
    /// workload — fail loudly instead.
    #[test]
    fn golden_from_seed() {
        let mut r = SimRng::from_seed(42);
        let got: Vec<u64> = (0..4).map(|_| r.u64()).collect();
        assert_eq!(got, GOLDEN_FROM_SEED_42);
    }

    #[test]
    fn golden_streams() {
        let mut r = SimRng::stream(42, "arrivals");
        let got: Vec<u64> = (0..4).map(|_| r.u64()).collect();
        assert_eq!(got, GOLDEN_STREAM_42_ARRIVALS);

        let mut r = SimRng::indexed_stream(7, "node", 3);
        let got: Vec<u64> = (0..4).map(|_| r.u64()).collect();
        assert_eq!(got, GOLDEN_INDEXED_7_NODE_3);
    }

    // Captured from this implementation at introduction time (PR 1); they
    // must never change.
    const GOLDEN_FROM_SEED_42: [u64; 4] = [
        12343323003495711280,
        1641377365623878930,
        16068605123119461831,
        10057471241892641806,
    ];
    const GOLDEN_STREAM_42_ARRIVALS: [u64; 4] = [
        14112241514942721096,
        10690912424365409296,
        767831652651576174,
        10658326506111295349,
    ];
    const GOLDEN_INDEXED_7_NODE_3: [u64; 4] = [
        13352565609354652381,
        5489914391026602098,
        2536233196724145766,
        7741601588669032366,
    ];

    /// Golden values for the sweep runner's per-cell seed split. Every
    /// recorded sweep artifact depends on these: a change here silently
    /// re-seeds every grid cell, so fail loudly instead.
    #[test]
    fn golden_child_seeds() {
        assert_eq!(
            child_seed(42, "cell/proto=Realtor/lambda=6"),
            5238275696626210643
        );
        assert_eq!(
            child_seed(42, "cell/proto=PurePush/lambda=6"),
            14553247483921025947
        );
        assert_eq!(child_seed(7, "a"), 18268711025061130002);
        assert_eq!(indexed_child_seed(42, "rep/x", 0), 13682428374895651344);
        assert_eq!(indexed_child_seed(42, "rep/x", 1), 14682455009587030511);
        assert_eq!(indexed_child_seed(42, "rep/x", 2), 6710836381926762830);
    }

    /// The split is a pure function of (parent, label): deriving a cell's
    /// seed is unaffected by whatever other cells exist or in which order
    /// they are derived — the property that lets a sweep grid grow or
    /// reorder without perturbing existing cells' RNG streams.
    #[test]
    fn child_seed_depends_only_on_coordinates() {
        let alone = child_seed(42, "cell/proto=Realtor/lambda=6");
        // Derive a batch of other cells first, in two different orders.
        let labels = ["cell/a", "cell/b", "cell/c", "cell/proto=Realtor/lambda=7"];
        for l in labels {
            let _ = child_seed(42, l);
        }
        assert_eq!(child_seed(42, "cell/proto=Realtor/lambda=6"), alone);
        for l in labels.iter().rev() {
            let _ = child_seed(42, l);
        }
        assert_eq!(child_seed(42, "cell/proto=Realtor/lambda=6"), alone);
    }

    /// Child seeds feed `SimRng::from_seed` as hermetic world seeds; the
    /// resulting streams must be independent across labels and indices.
    #[test]
    fn child_seed_streams_are_independent() {
        let mut a = SimRng::from_seed(child_seed(42, "cell/lambda=2"));
        let mut b = SimRng::from_seed(child_seed(42, "cell/lambda=4"));
        let same = (0..32).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
        let mut r0 = SimRng::from_seed(indexed_child_seed(42, "rep/cell", 0));
        let mut r1 = SimRng::from_seed(indexed_child_seed(42, "rep/cell", 1));
        assert_ne!(r0.u64(), r1.u64());
    }

    /// `child_seed` is exactly the state-seed that `SimRng::stream` expands,
    /// so the two derivations share one independence argument.
    #[test]
    fn child_seed_matches_stream_state_derivation() {
        let mut via_stream = SimRng::stream(42, "arrivals");
        let mut via_child = SimRng {
            s: SimRng::seed_state(child_seed(42, "arrivals")),
        };
        for _ in 0..16 {
            assert_eq!(via_stream.u64(), via_child.u64());
        }
    }

    /// The samplers are pure inverse-CDF transforms of the uniform stream:
    /// pin them against hand-computed transforms of the same draws.
    #[test]
    fn exp_matches_inverse_cdf_of_uniform_stream() {
        let mut u = SimRng::from_seed(9);
        let mut x = SimRng::from_seed(9);
        for _ in 0..100 {
            let expect = -5.0 * (1.0 - u.f64()).ln();
            assert_eq!(x.exp(5.0), expect);
        }
    }

    #[test]
    fn pareto_matches_inverse_cdf_of_uniform_stream() {
        let mut u = SimRng::from_seed(10);
        let mut x = SimRng::from_seed(10);
        for _ in 0..100 {
            let expect = 2.0 / (1.0 - u.f64()).powf(1.0 / 1.5);
            assert_eq!(x.pareto(2.0, 1.5), expect);
        }
    }

    #[test]
    fn poisson_matches_knuth_counting_transform() {
        // Hand-run Knuth's algorithm on a clone of the stream and require
        // the same counts draw for draw.
        let mut u = SimRng::from_seed(11);
        let mut x = SimRng::from_seed(11);
        let lambda = 2.5f64;
        for _ in 0..100 {
            let limit = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            let expect = loop {
                p *= u.f64();
                if p <= limit {
                    break k;
                }
                k += 1;
            };
            assert_eq!(x.poisson(lambda), expect);
        }
    }

    #[test]
    fn f64_is_in_unit_interval_with_53_bits() {
        let mut r = SimRng::from_seed(12);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn index_is_unbiased_small_range() {
        // chi-square-ish sanity: each bucket of [0, 8) within 5% of uniform.
        let mut r = SimRng::from_seed(13);
        let n = 80_000;
        let mut counts = [0u64; 8];
        for _ in 0..n {
            counts[r.index(8)] += 1;
        }
        for c in counts {
            let p = c as f64 / n as f64;
            assert!((p - 0.125).abs() < 0.006, "bucket p {p}");
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::from_seed(1);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn exp_is_positive() {
        let mut r = SimRng::from_seed(2);
        assert!((0..10_000).all(|_| r.exp(0.001) > 0.0));
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = SimRng::from_seed(3);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.poisson(2.5)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut r = SimRng::from_seed(4);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.poisson(100.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn bernoulli_edges() {
        let mut r = SimRng::from_seed(5);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        let hits = (0..100_000).filter(|_| r.bernoulli(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = SimRng::from_seed(6);
        for _ in 0..100 {
            let s = r.sample_indices(25, 10);
            assert_eq!(s.len(), 10);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10);
            assert!(s.iter().all(|&i| i < 25));
        }
        assert_eq!(r.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::from_seed(7);
        assert!((0..10_000).all(|_| r.pareto(2.0, 1.5) >= 2.0));
    }
}
