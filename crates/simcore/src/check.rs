//! A minimal seed-driven property-test harness — the in-tree replacement
//! for the `proptest` dev-dependency, so the whole workspace tests offline.
//!
//! Model:
//!
//! * a **generator** is any `Fn(&mut SimRng) -> T` — compose them with the
//!   helpers in [`gen`] or the sampler methods on [`SimRng`] directly;
//! * a **property** is any `Fn(&T) -> PropResult`; use the
//!   [`prop_assert!`](crate::prop_assert), [`prop_assert_eq!`](crate::prop_assert_eq)
//!   and [`prop_assert_ne!`](crate::prop_assert_ne) macros inside it;
//! * [`forall`] runs `cases` generated inputs through the property. On
//!   failure it **shrinks** the input (halving integers, halving and
//!   element-dropping vectors, component-wise for tuples) and panics with
//!   the *case seed*, so the exact failing input can be replayed with
//!   `REALTOR_CHECK_SEED=<seed> cargo test <name>`.
//!
//! ```
//! use realtor_simcore::check::{forall, gen, PropResult};
//! use realtor_simcore::prop_assert;
//!
//! forall("abs_is_non_negative", 0xC0FFEE, 256,
//!     |rng| gen::i64_in(rng, -1000, 1000),
//!     |&x| {
//!         prop_assert!(x.abs() >= 0, "|{x}| was negative");
//!         Ok(())
//!     });
//! ```

use crate::rng::SimRng;
use std::fmt::Debug;

/// What a property returns: `Ok(())` to pass, `Err(message)` to fail.
pub type PropResult = Result<(), String>;

/// Environment variable that replays one exact failing case.
pub const REPLAY_ENV: &str = "REALTOR_CHECK_SEED";

/// Upper bound on greedy shrink iterations (each iteration strictly
/// simplifies the input, so this is a safety net, not a tuning knob).
const MAX_SHRINK_STEPS: usize = 10_000;

/// splitmix64-style derivation of the per-case seed from (master, case).
fn case_seed(master: u64, case: u64) -> u64 {
    let mut x = master ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Types the harness knows how to simplify after a failure.
///
/// `shrink_candidates` returns strictly-simpler variants to try, most
/// aggressive first; an empty vector means fully shrunk. Every type is
/// allowed to return an empty vector (no shrinking) — the harness still
/// reports the original failing input.
pub trait Shrink: Sized + Clone {
    /// Strictly simpler candidate inputs, most aggressive first.
    fn shrink_candidates(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    if *self > 1 {
                        out.push(*self / 2);
                    }
                    out.push(*self - 1);
                }
                out
            }
        }
    )*};
}
impl_shrink_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    out.push(*self / 2);
                    if *self < 0 {
                        out.push(-*self); // prefer the positive twin
                    }
                }
                out
            }
        }
    )*};
}
impl_shrink_int!(i8, i16, i32, i64, isize);

impl Shrink for f64 {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if *self != 0.0 && self.is_finite() {
            out.push(0.0);
            out.push(*self / 2.0);
            if *self < 0.0 {
                out.push(-*self);
            }
            if self.fract() != 0.0 {
                out.push(self.trunc());
            }
        }
        out
    }
}

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for char {}
impl Shrink for String {}

impl<T: Shrink> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Halving first: drop the back half, then the front half.
        out.push(self[..n / 2].to_vec());
        out.push(self[n - n / 2..].to_vec());
        // Then single-element removals (bounded for long vectors).
        for i in 0..n.min(8) {
            let mut v = self.clone();
            v.remove(i * n / n.min(8));
            out.push(v);
        }
        // Finally element-wise shrinks on a bounded prefix.
        for i in 0..n.min(4) {
            for cand in self[i].shrink_candidates().into_iter().take(2) {
                let mut v = self.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($n:tt $T:ident),+))*) => {$(
        impl<$($T: Shrink),+> Shrink for ($($T,)+) {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$n.shrink_candidates() {
                        let mut t = self.clone();
                        t.$n = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )*};
}
impl_shrink_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
}

impl<T: Shrink> Shrink for Option<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(x) => {
                let mut out = vec![None];
                out.extend(x.shrink_candidates().into_iter().map(Some));
                out
            }
        }
    }
}

/// Greedily minimize a failing input: repeatedly replace it with the first
/// shrink candidate that still fails, until none does.
fn shrink_to_minimal<T, P>(mut input: T, mut message: String, prop: &P) -> (T, String, usize)
where
    T: Shrink,
    P: Fn(&T) -> PropResult,
{
    let mut steps = 0;
    'outer: while steps < MAX_SHRINK_STEPS {
        for cand in input.shrink_candidates() {
            if let Err(msg) = prop(&cand) {
                input = cand;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (input, message, steps)
}

/// Run `prop` against `cases` inputs drawn from `gen`, shrinking and
/// reporting the case seed on failure.
///
/// `name` keys the random stream (so adding a new `forall` to a test file
/// never perturbs existing ones) and appears in the failure report. Setting
/// the environment variable [`REPLAY_ENV`] to a previously reported case
/// seed replays exactly that input, once.
pub fn forall<T, G, P>(name: &str, seed: u64, cases: u64, gen: G, prop: P)
where
    T: Debug + Shrink,
    G: Fn(&mut SimRng) -> T,
    P: Fn(&T) -> PropResult,
{
    let replay = std::env::var(REPLAY_ENV)
        .ok()
        .and_then(|v| parse_replay_seed(&v));
    forall_with_replay(name, seed, cases, replay, gen, prop)
}

/// Parse a replay seed as printed in a failure report (decimal or `0x` hex).
pub fn parse_replay_seed(v: &str) -> Option<u64> {
    let v = v.trim();
    v.strip_prefix("0x")
        .map_or_else(|| v.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
}

/// [`forall`] with the replay override passed explicitly instead of read
/// from the environment. `replay = Some(case_seed)` runs exactly that one
/// case; `None` runs the normal `cases` schedule. This is the hook the
/// replay-regression test uses to prove that a reported case seed really
/// reproduces its failure without racing on process-global env vars.
pub fn forall_with_replay<T, G, P>(
    name: &str,
    seed: u64,
    cases: u64,
    replay: Option<u64>,
    gen: G,
    prop: P,
) where
    T: Debug + Shrink,
    G: Fn(&mut SimRng) -> T,
    P: Fn(&T) -> PropResult,
{
    let seeds: Vec<u64> = match replay {
        Some(s) => vec![s],
        None => (0..cases).map(|c| case_seed(seed, c)).collect(),
    };
    for (case, &cs) in seeds.iter().enumerate() {
        let mut rng = SimRng::stream(cs, name);
        let input = gen(&mut rng);
        if let Err(msg) = prop(&input) {
            let (min_input, min_msg, steps) = shrink_to_minimal(input, msg, &prop);
            panic!(
                "property '{name}' failed at case {case}/{cases} (case seed {cs:#018x})\n\
                 replay exactly: {REPLAY_ENV}={cs:#x} cargo test\n\
                 minimal input after {steps} shrink steps: {min_input:?}\n\
                 failure: {min_msg}"
            );
        }
    }
}

/// Generator combinators for [`forall`].
pub mod gen {
    use super::SimRng;

    /// A vector of `len` in `[min_len, max_len]`, elements drawn by `f`.
    pub fn vec<T>(
        rng: &mut SimRng,
        min_len: usize,
        max_len: usize,
        f: impl Fn(&mut SimRng) -> T,
    ) -> Vec<T> {
        assert!(min_len <= max_len);
        let len = min_len + rng.index(max_len - min_len + 1);
        (0..len).map(|_| f(rng)).collect()
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        lo + rng.u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(rng: &mut SimRng, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + rng.index(hi - lo)
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn i64_in(rng: &mut SimRng, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi);
        lo + (rng.u64() % ((hi - lo) as u64)) as i64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
        rng.range_f64(lo, hi)
    }

    /// Uniform `u8` in `[lo, hi)`.
    pub fn u8_in(rng: &mut SimRng, lo: u8, hi: u8) -> u8 {
        u64_in(rng, u64::from(lo), u64::from(hi)) as u8
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(rng: &mut SimRng, lo: u32, hi: u32) -> u32 {
        u64_in(rng, u64::from(lo), u64::from(hi)) as u32
    }

    /// Any `u64` (full range).
    pub fn any_u64(rng: &mut SimRng) -> u64 {
        rng.u64()
    }

    /// Any byte.
    pub fn any_u8(rng: &mut SimRng) -> u8 {
        (rng.u64() & 0xFF) as u8
    }

    /// Pick one element of a non-empty slice, by value.
    pub fn one_of<T: Clone>(rng: &mut SimRng, options: &[T]) -> T {
        options[rng.index(options.len())].clone()
    }
}

/// Property-scoped assertion: evaluates to `return Err(..)` on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!("{} ({}:{})", format!($($arg)+), file!(), line!()));
        }
    };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "expected equal: {:?} vs {:?} ({}:{})",
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "{}: {:?} vs {:?} ({}:{})",
                format!($($arg)+),
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
}

/// Property-scoped inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "expected different, both {:?} ({}:{})",
                a,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "{}: both {:?} ({}:{})",
                format!($($arg)+),
                a,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_is_silent() {
        forall(
            "add_commutes",
            1,
            128,
            |r| (r.u64() >> 1, r.u64() >> 1),
            |&(a, b)| {
                prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
    }

    #[test]
    fn failing_property_panics_with_seed_and_minimal_input() {
        let result = std::panic::catch_unwind(|| {
            forall(
                "all_numbers_are_small",
                2,
                256,
                |r| gen::u64_in(r, 0, 1000),
                |&x| {
                    prop_assert!(x < 500, "{x} is not small");
                    Ok(())
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("all_numbers_are_small"), "{msg}");
        assert!(msg.contains(REPLAY_ENV), "{msg}");
        // shrink-by-halving lands on the boundary 500 exactly
        assert!(msg.contains("minimal input"), "{msg}");
        assert!(msg.contains("500"), "{msg}");
    }

    #[test]
    fn vec_shrinking_minimizes_length() {
        let result = std::panic::catch_unwind(|| {
            forall(
                "no_vec_has_three_elements",
                3,
                64,
                |r| gen::vec(r, 0, 50, |r| gen::u64_in(r, 0, 10)),
                |v| {
                    prop_assert!(v.len() < 3, "len {}", v.len());
                    Ok(())
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        // minimal counterexample is a 3-element vector of zeros
        assert!(msg.contains("[0, 0, 0]"), "{msg}");
    }

    #[test]
    fn shrinking_is_deterministic() {
        let run = || {
            std::panic::catch_unwind(|| {
                forall(
                    "det",
                    7,
                    64,
                    |r| (gen::u64_in(r, 0, 10_000), gen::f64_in(r, 0.0, 1.0)),
                    |&(n, _)| {
                        prop_assert!(n < 2_000);
                        Ok(())
                    },
                );
            })
            .expect_err("must fail")
            .downcast::<String>()
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    /// Regression: the replay seed printed in a shrunk failure report must
    /// actually reproduce the failure when re-run. We provoke a failure,
    /// parse the `REALTOR_CHECK_SEED=<hex>` seed out of the panic message
    /// exactly as a user would, replay that one case through the same
    /// harness, and require the identical minimal counterexample.
    #[test]
    fn printed_replay_seed_reproduces_the_failure() {
        let gen = |r: &mut SimRng| (gen::u64_in(r, 0, 50_000), gen::u64_in(r, 0, 7));
        let prop = |&(x, y): &(u64, u64)| {
            prop_assert!(x < 10_000 || y % 2 == 0, "bad pair ({x}, {y})");
            Ok(())
        };
        let first = std::panic::catch_unwind(|| {
            forall("replay_seed_regression", 0xBADC0DE, 512, gen, prop);
        });
        let msg = *first
            .expect_err("property must fail")
            .downcast::<String>()
            .unwrap();

        // Parse the advertised replay invocation out of the report.
        let tail = msg
            .split(&format!("{REPLAY_ENV}="))
            .nth(1)
            .expect("report advertises a replay seed");
        let token = tail.split_whitespace().next().unwrap();
        let seed = parse_replay_seed(token).expect("replay seed parses");

        // The report's minimal input, for comparison with the replay's.
        let minimal = msg
            .split("minimal input after")
            .nth(1)
            .and_then(|s| s.split(": ").nth(1))
            .and_then(|s| s.lines().next())
            .expect("report contains the minimal input")
            .to_string();

        // Replaying exactly that case must fail again, shrink the same way,
        // and report the same case seed.
        let replayed = std::panic::catch_unwind(|| {
            forall_with_replay(
                "replay_seed_regression",
                0xBADC0DE,
                512,
                Some(seed),
                gen,
                prop,
            );
        });
        let replay_msg = *replayed
            .expect_err("replay must reproduce the failure")
            .downcast::<String>()
            .unwrap();
        assert!(
            replay_msg.contains(&format!("case seed {seed:#018x}")),
            "replay reports the same case seed: {replay_msg}"
        );
        assert!(
            replay_msg.contains(&minimal),
            "replay reaches the same minimal input {minimal:?}: {replay_msg}"
        );

        // Sanity: a deliberately different seed that satisfies the property
        // replays clean, so the reproduction above is not vacuous.
        let benign = (0..)
            .map(|c| case_seed(0xBADC0DE, c))
            .find(|&cs| {
                let mut rng = SimRng::stream(cs, "replay_seed_regression");
                prop(&gen(&mut rng)).is_ok()
            })
            .unwrap();
        forall_with_replay(
            "replay_seed_regression",
            0xBADC0DE,
            512,
            Some(benign),
            gen,
            prop,
        );
    }

    #[test]
    fn parse_replay_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_replay_seed("0x2a"), Some(42));
        assert_eq!(parse_replay_seed(" 42 "), Some(42));
        assert_eq!(parse_replay_seed("0x002a"), Some(42));
        assert_eq!(parse_replay_seed("nope"), None);
    }

    #[test]
    fn integer_candidates_move_toward_zero() {
        assert!(100u64.shrink_candidates().contains(&50));
        assert!(100u64.shrink_candidates().contains(&0));
        assert!(0u64.shrink_candidates().is_empty());
        assert!((-8i64).shrink_candidates().contains(&8));
    }
}
