//! Tabular experiment output.
//!
//! Every experiment in this workspace reduces to "a table with one row per
//! parameter point and one column per metric/protocol" — exactly the series
//! the paper plots in Figures 5–9. [`Table`] collects such rows and renders
//! them as CSV (for plotting) or aligned markdown (for EXPERIMENTS.md and the
//! console).

use std::fmt::Write as _;

/// A cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Text cell.
    Str(String),
    /// Integer cell.
    Int(i64),
    /// Float cell, rendered with [`Table::float_precision`] digits.
    Float(f64),
    /// Empty cell.
    Empty,
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Str(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Str(s)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}
impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v as i64)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}

/// A simple column-ordered results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
    float_precision: usize,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            float_precision: 4,
        }
    }

    /// Number of fractional digits used when rendering floats (default 4).
    pub fn float_precision(mut self, digits: usize) -> Self {
        self.float_precision = digits;
        self
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Append a row; its length must match the header.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access a cell by row/column index.
    pub fn cell(&self, row: usize, col: usize) -> &Cell {
        &self.rows[row][col]
    }

    /// Numeric value of a cell (`None` for text/empty cells).
    pub fn value(&self, row: usize, col: usize) -> Option<f64> {
        match self.rows[row][col] {
            Cell::Int(v) => Some(v as f64),
            Cell::Float(v) => Some(v),
            _ => None,
        }
    }

    fn render_cell(&self, c: &Cell) -> String {
        match c {
            Cell::Str(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format!("{:.*}", self.float_precision, v),
            Cell::Empty => String::new(),
        }
    }

    /// The CSV header line (newline-terminated). Streamed writers emit this
    /// once, then [`Table::csv_row_of`] per data row; concatenating the two
    /// is byte-identical to [`Table::to_csv`] by construction.
    pub fn csv_header(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        out
    }

    /// Render one row of cells as a CSV line (newline-terminated), using
    /// this table's float precision. The row need not be stored in the
    /// table, but must match its width.
    pub fn csv_row_of(&self, row: &[Cell]) -> String {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        let cells: Vec<String> = row
            .iter()
            .map(|c| {
                let s = self.render_cell(c);
                debug_assert!(!s.contains(','), "cell contains comma: {s}");
                s
            })
            .collect();
        let mut out = cells.join(",");
        out.push('\n');
        out
    }

    /// Render as RFC-4180-ish CSV (no quoting needed: cells never contain
    /// commas in this workspace; asserted in debug builds).
    pub fn to_csv(&self) -> String {
        let mut out = self.csv_header();
        for row in &self.rows {
            out.push_str(&self.csv_row_of(row));
        }
        out
    }

    /// Render as an aligned GitHub-flavoured markdown table with title.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| self.render_cell(c)).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}\n", self.title);
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "| {} |", header.join(" | "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "| {} |", rule.join(" | "));
        for row in &rendered {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X", &["lambda", "protocol", "value"]).float_precision(2);
        t.push_row(vec![Cell::Float(1.0), "realtor".into(), Cell::Float(0.987)]);
        t.push_row(vec![Cell::Float(2.0), "push-1".into(), Cell::Int(42)]);
        t
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "lambda,protocol,value");
        assert_eq!(lines[1], "1.00,realtor,0.99");
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample().to_markdown();
        assert!(md.contains("### Fig X"));
        assert!(md.contains("realtor"));
        assert!(md.contains("| lambda"));
        assert!(md.contains("42"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec![Cell::Int(1)]);
    }

    #[test]
    fn value_accessor() {
        let t = sample();
        assert_eq!(t.value(0, 0), Some(1.0));
        assert_eq!(t.value(0, 1), None);
        assert_eq!(t.value(1, 2), Some(42.0));
        assert_eq!(t.len(), 2);
    }
}
