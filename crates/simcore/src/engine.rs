//! The simulation engine: a clock plus the event loop.
//!
//! The engine is deliberately small. A model implements [`Handler`] and
//! receives each event together with a [`Context`] through which it may read
//! the clock and schedule further events. All model state lives inside the
//! handler; the engine owns only the clock and the future-event list. This
//! split keeps the hot loop monomorphic and allocation-free apart from the
//! heap itself.

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Scheduling interface handed to the model while it processes an event.
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire after `delay`.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Schedule `event` at an absolute instant.
    ///
    /// Instants in the past are clamped to "now": the event still fires, but
    /// causality (monotone clock) is preserved.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at.max(self.now), event);
    }

    /// Request that the run loop stop after the current event completes.
    #[inline]
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// A simulation model: consumes events, optionally schedules more.
pub trait Handler {
    /// The event alphabet of the model.
    type Event;

    /// Process one event at its activation time.
    fn handle(&mut self, event: Self::Event, ctx: &mut Context<'_, Self::Event>);
}

/// Outcome of a call to [`Engine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The future-event list drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    Horizon,
    /// The model called [`Context::stop`].
    Stopped,
    /// The event budget was exhausted (guard against runaway models).
    Budget,
}

/// The discrete-event engine.
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine at time zero with an empty event list.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// Current virtual time (the activation time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Largest number of events ever pending at once (profiling hook; see
    /// [`EventQueue::high_water`]).
    pub fn queue_high_water(&self) -> usize {
        self.queue.high_water()
    }

    /// Seed the event list before (or between) runs.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at.max(self.now), event);
    }

    /// Run until the event list drains, `horizon` is passed, the model stops
    /// the run, or `budget` events have been processed.
    ///
    /// Events with activation time strictly greater than `horizon` are left
    /// pending; the clock is advanced to exactly `horizon` when the outcome is
    /// [`RunOutcome::Horizon`] so that time-weighted statistics can be closed
    /// out consistently.
    pub fn run<H>(&mut self, model: &mut H, horizon: SimTime, budget: u64) -> RunOutcome
    where
        H: Handler<Event = E>,
    {
        let mut used: u64 = 0;
        loop {
            // `next_time` (not `peek_time`): it distills the ladder queue's
            // next band into the head rung, so the peek and the pop below
            // together cost one amortized-O(1) queue operation.
            let Some(next) = self.queue.next_time() else {
                return RunOutcome::Drained;
            };
            if next > horizon {
                self.now = horizon;
                return RunOutcome::Horizon;
            }
            if used >= budget {
                return RunOutcome::Budget;
            }
            let (time, event) = self.queue.pop().expect("peeked event must pop");
            debug_assert!(time >= self.now, "event queue violated causality");
            self.now = time;
            self.processed += 1;
            used += 1;
            let mut stop = false;
            let mut ctx = Context {
                now: self.now,
                queue: &mut self.queue,
                stop: &mut stop,
            };
            model.handle(event, &mut ctx);
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }

    /// [`Engine::run`] with an effectively unlimited event budget.
    pub fn run_until<H>(&mut self, model: &mut H, horizon: SimTime) -> RunOutcome
    where
        H: Handler<Event = E>,
    {
        self.run(model, horizon, u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that schedules a chain of `n` ticks, one second apart.
    struct Chain {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Handler for Chain {
        type Event = ();
        fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
            self.fired_at.push(ctx.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.schedule_in(SimDuration::from_secs(1), ());
            }
        }
    }

    #[test]
    fn chain_runs_to_completion() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, ());
        let mut model = Chain {
            remaining: 5,
            fired_at: vec![],
        };
        let out = engine.run_until(&mut model, SimTime::from_secs(100));
        assert_eq!(out, RunOutcome::Drained);
        assert_eq!(model.fired_at.len(), 6);
        assert_eq!(*model.fired_at.last().unwrap(), SimTime::from_secs(5));
        assert_eq!(engine.processed(), 6);
    }

    #[test]
    fn horizon_clamps_clock() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, ());
        let mut model = Chain {
            remaining: 1000,
            fired_at: vec![],
        };
        let out = engine.run_until(&mut model, SimTime::from_secs_f64(3.5));
        assert_eq!(out, RunOutcome::Horizon);
        assert_eq!(engine.now(), SimTime::from_secs_f64(3.5));
        // events at t=0..=3 fired, t=4 is still pending
        assert_eq!(model.fired_at.len(), 4);
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn budget_limits_processing() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, ());
        let mut model = Chain {
            remaining: 1000,
            fired_at: vec![],
        };
        let out = engine.run(&mut model, SimTime::MAX, 10);
        assert_eq!(out, RunOutcome::Budget);
        assert_eq!(model.fired_at.len(), 10);
    }

    struct Stopper;
    impl Handler for Stopper {
        type Event = u32;
        fn handle(&mut self, ev: u32, ctx: &mut Context<'_, u32>) {
            if ev == 3 {
                ctx.stop();
            } else {
                ctx.schedule_in(SimDuration::from_secs(1), ev + 1);
            }
        }
    }

    #[test]
    fn model_can_stop_run() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, 0u32);
        let out = engine.run_until(&mut Stopper, SimTime::MAX);
        assert_eq!(out, RunOutcome::Stopped);
        assert_eq!(engine.now(), SimTime::from_secs(3));
    }

    #[test]
    fn past_scheduling_is_clamped_to_now() {
        struct PastScheduler {
            seen: Vec<SimTime>,
        }
        impl Handler for PastScheduler {
            type Event = bool;
            fn handle(&mut self, first: bool, ctx: &mut Context<'_, bool>) {
                self.seen.push(ctx.now());
                if first {
                    ctx.schedule_at(SimTime::ZERO, false); // in the past
                }
            }
        }
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(5), true);
        let mut m = PastScheduler { seen: vec![] };
        engine.run_until(&mut m, SimTime::MAX);
        assert_eq!(m.seen, vec![SimTime::from_secs(5), SimTime::from_secs(5)]);
    }
}
