//! Hashed timer wheel — the banded middle rung of the ladder event queue.
//!
//! A [`TimerWheel`] hashes entries into `BUCKETS` time bands of width
//! `2^width_log2` ticks each, covering the half-open window
//! `[base, base + BUCKETS << width_log2)`. Scheduling into the window is
//! O(1): compute the band index, push onto that band's vector. Draining is
//! banded: [`TimerWheel::pop_band`] removes the next non-empty band *whole*,
//! so the thousands of near-identical protocol timer expiries the REALTOR
//! stack arms (TTL refreshes, Algorithm-H interval ticks, failure-detector
//! sweeps) come back as one batch instead of one heap pop each — the
//! classic hashed-timing-wheel trade (Varghese & Lauck) applied to a DES
//! future-event list.
//!
//! Entries inside a band are **unordered**; the caller (the ladder queue in
//! [`crate::event`]) establishes the exact deterministic `(time, seq)`
//! order when it distills a band into its sorted head run. The wheel only
//! guarantees the banded invariant: every entry in band `i` activates
//! strictly before every entry in band `j > i`.
//!
//! The window is re-anchored with [`TimerWheel::rebase`] when it drains:
//! the ladder queue picks a fresh `base`/`width_log2` from the overflow
//! rung's span so the wheel always covers the *currently pending* horizon,
//! which is what makes scheduling near-O(1) regardless of how far apart
//! event times are spread.

use crate::time::SimTime;

/// Number of bands per wheel window (power of two; index = offset >> width).
pub const BUCKETS: usize = 256;

/// One wheel entry: an activation key plus an opaque payload handle.
///
/// `seq` is the queue-global FIFO tie-break counter; the wheel stores it so
/// a distilled band can be ordered exactly without touching the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelEntry<T> {
    /// Activation instant.
    pub time: SimTime,
    /// FIFO tie-break sequence number (unique per queue).
    pub seq: u64,
    /// Payload handle (the ladder queue stores a slab slot here).
    pub item: T,
}

impl<T> WheelEntry<T> {
    /// The total-order key: earliest time first, FIFO within an instant.
    #[inline]
    pub fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A hashed timer wheel over [`BUCKETS`] bands of `2^width_log2` ticks.
#[derive(Debug, Clone)]
pub struct TimerWheel<T> {
    bands: Vec<Vec<WheelEntry<T>>>,
    /// First tick of band 0.
    base: u64,
    /// log2 of the band width in ticks.
    width_log2: u32,
    /// First tick past the window (saturated; band indexing is the
    /// authoritative bounds check).
    end: u64,
    /// Next band [`TimerWheel::pop_band`] will consider.
    cursor: usize,
    /// Entries currently stored across all bands.
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel with a degenerate (zero-width) window: every insert
    /// misses until the first [`TimerWheel::rebase`].
    pub fn new() -> Self {
        TimerWheel {
            bands: (0..BUCKETS).map(|_| Vec::new()).collect(),
            base: 0,
            width_log2: 0,
            end: 0,
            cursor: BUCKETS,
            len: 0,
        }
    }

    /// Entries currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// First tick of the window (band 0's start).
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// First tick past the window (saturated at `u64::MAX`).
    #[inline]
    pub fn window_end(&self) -> u64 {
        self.end
    }

    /// True when no entry is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The band width that makes the window `BUCKETS << width_log2` cover
    /// `span + 1` ticks (the whole overflow rung on a rebase), as a log2.
    pub fn width_log2_for(span: u64) -> u32 {
        let need = span >> BUCKETS.trailing_zeros();
        u64::BITS - need.leading_zeros()
    }

    /// Re-anchor the (empty) window at `base` with bands of
    /// `2^width_log2` ticks and reset the drain cursor to band 0.
    pub fn rebase(&mut self, base: SimTime, width_log2: u32) {
        debug_assert_eq!(self.len, 0, "rebase requires an empty wheel");
        self.base = base.ticks();
        self.width_log2 = width_log2;
        let window = (BUCKETS as u128) << width_log2;
        self.end = u128::from(self.base)
            .saturating_add(window)
            .min(u128::from(u64::MAX)) as u64;
        self.cursor = 0;
    }

    /// Insert an entry if its time falls inside the *unswept* part of the
    /// window; hand it back otherwise (the caller escalates it to another
    /// rung). Entries at or past the cursor's band are accepted; entries in
    /// already-swept bands are refused so a band is never mutated after it
    /// was distilled.
    #[inline]
    pub fn insert(&mut self, entry: WheelEntry<T>) -> Result<(), WheelEntry<T>> {
        let t = entry.time.ticks();
        let Some(offset) = t.checked_sub(self.base) else {
            return Err(entry);
        };
        let idx = (offset >> self.width_log2) as usize;
        if idx >= BUCKETS || idx < self.cursor {
            return Err(entry);
        }
        self.bands[idx].push(entry);
        self.len += 1;
        Ok(())
    }

    /// First tick strictly past band `idx`'s span (saturated).
    #[inline]
    fn band_end(&self, idx: usize) -> u64 {
        let span = ((idx as u128) + 1) << self.width_log2;
        u128::from(self.base)
            .saturating_add(span)
            .min(u128::from(u64::MAX)) as u64
    }

    /// Drain the next non-empty band whole into `out` (appended,
    /// unordered): returns the first tick past the band (every drained
    /// entry activates before it). Advances the cursor past the drained
    /// band; the band's vector keeps its capacity for the next window.
    /// `None` when the wheel is empty.
    pub fn pop_band_into(&mut self, out: &mut Vec<WheelEntry<T>>) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        while self.cursor < BUCKETS {
            if self.bands[self.cursor].is_empty() {
                self.cursor += 1;
                continue;
            }
            let band = &mut self.bands[self.cursor];
            self.len -= band.len();
            out.append(band);
            let end = self.band_end(self.cursor);
            self.cursor += 1;
            return Some(SimTime::from_ticks(end));
        }
        unreachable!("len > 0 but every band was empty");
    }

    /// Like [`TimerWheel::pop_band_into`] but **swaps** vectors instead of
    /// copying: `out` (which must be empty) receives the band's vector
    /// wholesale, and the band keeps `out`'s old allocation for the next
    /// window. This is the ladder queue's zero-copy distill path — the
    /// head run, scratch buffer, and band vectors rotate one allocation
    /// between them.
    pub fn pop_band_swap(&mut self, out: &mut Vec<WheelEntry<T>>) -> Option<SimTime> {
        debug_assert!(out.is_empty(), "swap target must be empty");
        if self.len == 0 {
            return None;
        }
        while self.cursor < BUCKETS {
            if self.bands[self.cursor].is_empty() {
                self.cursor += 1;
                continue;
            }
            let band = &mut self.bands[self.cursor];
            self.len -= band.len();
            std::mem::swap(band, out);
            let end = self.band_end(self.cursor);
            self.cursor += 1;
            return Some(SimTime::from_ticks(end));
        }
        unreachable!("len > 0 but every band was empty");
    }

    /// [`TimerWheel::pop_band_into`] returning a fresh vector (convenience
    /// for tests; the hot path reuses a scratch buffer instead).
    pub fn pop_band(&mut self) -> Option<(SimTime, Vec<WheelEntry<T>>)> {
        let mut out = Vec::new();
        self.pop_band_into(&mut out).map(|end| (end, out))
    }

    /// Earliest activation time stored, scanning from the cursor (read-only
    /// peek; O(BUCKETS + band occupancy)).
    pub fn peek_min_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        self.bands[self.cursor..]
            .iter()
            .find(|b| !b.is_empty())
            .map(|b| b.iter().map(|e| e.time).min().expect("band is non-empty"))
    }

    /// Drop every entry; the window stays where it was. O(1) when the
    /// wheel is already empty (the common case: retiring a drained rung).
    pub fn clear(&mut self) {
        if self.len != 0 {
            for b in &mut self.bands {
                b.clear();
            }
            self.len = 0;
        }
        self.cursor = BUCKETS;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(t: u64, seq: u64) -> WheelEntry<u32> {
        WheelEntry {
            time: SimTime::from_ticks(t),
            seq,
            item: seq as u32,
        }
    }

    #[test]
    fn bands_partition_the_window() {
        let mut w = TimerWheel::new();
        w.rebase(SimTime::from_ticks(1_000), 4); // bands of 16 ticks
        assert!(w.insert(e(1_000, 0)).is_ok()); // band 0
        assert!(w.insert(e(1_015, 1)).is_ok()); // band 0
        assert!(w.insert(e(1_016, 2)).is_ok()); // band 1
        assert!(w.insert(e(999, 3)).is_err()); // below base
        assert!(w.insert(e(1_000 + 256 * 16, 4)).is_err()); // past window
        assert_eq!(w.len(), 3);

        let (end0, band0) = w.pop_band().unwrap();
        assert_eq!(end0, SimTime::from_ticks(1_016));
        assert_eq!(band0.len(), 2, "same-band timers batch-fire together");
        let (end1, band1) = w.pop_band().unwrap();
        assert_eq!(end1, SimTime::from_ticks(1_032));
        assert_eq!(band1.len(), 1);
        assert!(w.pop_band().is_none());
    }

    #[test]
    fn swept_bands_refuse_inserts() {
        let mut w = TimerWheel::new();
        w.rebase(SimTime::from_ticks(0), 4);
        assert!(w.insert(e(0, 0)).is_ok());
        assert!(w.insert(e(40, 1)).is_ok());
        let _ = w.pop_band().unwrap(); // sweeps band 0
        assert!(w.insert(e(5, 2)).is_err(), "band 0 already swept");
        assert!(w.insert(e(41, 3)).is_ok(), "band 2 still live");
    }

    #[test]
    fn width_covers_the_span() {
        for span in [0, 1, 255, 256, 257, 1 << 20, u64::MAX / 2, u64::MAX] {
            let wlog = TimerWheel::<u32>::width_log2_for(span);
            let window = (BUCKETS as u128) << wlog;
            assert!(
                window > u128::from(span),
                "span {span}: window {window} must exceed it"
            );
        }
    }

    #[test]
    fn rebase_near_max_saturates_safely() {
        let mut w = TimerWheel::new();
        let base = u64::MAX - 100;
        w.rebase(SimTime::from_ticks(base), 60);
        assert!(w.insert(e(u64::MAX, 0)).is_ok());
        assert!(w.insert(e(base, 1)).is_ok());
        let (_, band) = w.pop_band().unwrap();
        assert_eq!(band.len(), 2);
    }

    #[test]
    fn same_instant_burst_lands_in_one_band() {
        let mut w = TimerWheel::new();
        w.rebase(SimTime::ZERO, 10);
        for seq in 0..1_000 {
            assert!(w.insert(e(512, seq)).is_ok());
        }
        let (_, band) = w.pop_band().unwrap();
        assert_eq!(band.len(), 1_000, "one pop drains the whole burst");
        assert!(w.is_empty());
    }

    #[test]
    fn peek_min_matches_contents() {
        let mut w = TimerWheel::new();
        w.rebase(SimTime::ZERO, 4);
        assert_eq!(w.peek_min_time(), None);
        assert!(w.insert(e(100, 0)).is_ok());
        assert!(w.insert(e(37, 1)).is_ok());
        assert!(w.insert(e(38, 2)).is_ok());
        assert_eq!(w.peek_min_time(), Some(SimTime::from_ticks(37)));
    }

    #[test]
    fn clear_empties_without_rebase() {
        let mut w = TimerWheel::new();
        w.rebase(SimTime::ZERO, 4);
        assert!(w.insert(e(10, 0)).is_ok());
        w.clear();
        assert!(w.is_empty());
        assert!(w.pop_band().is_none());
    }
}
