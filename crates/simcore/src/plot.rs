//! Terminal line plots.
//!
//! The experiment driver reproduces the paper's *figures*; this module lets
//! it draw them as ASCII charts directly in the terminal, so a reader can
//! compare curve shapes against the paper without leaving the console.
//! One character cell per (x-bucket, y-bucket); each series gets a marker,
//! collisions show the later series.

use std::fmt::Write as _;

/// A named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (need not be sorted; NaNs are skipped).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Plot configuration.
#[derive(Debug, Clone)]
pub struct PlotConfig {
    /// Chart title.
    pub title: String,
    /// Plot-area width in characters.
    pub width: usize,
    /// Plot-area height in characters.
    pub height: usize,
    /// Log-scale the y axis (values must then be positive; zeros are
    /// clamped to the smallest positive value present).
    pub log_y: bool,
    /// Force y range; `None` = auto from data (with a small margin).
    pub y_range: Option<(f64, f64)>,
}

impl Default for PlotConfig {
    fn default() -> Self {
        PlotConfig {
            title: String::new(),
            width: 60,
            height: 16,
            log_y: false,
            y_range: None,
        }
    }
}

const MARKERS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Render the series into a multi-line string.
pub fn render(series: &[Series], cfg: &PlotConfig) -> String {
    assert!(cfg.width >= 8 && cfg.height >= 4, "plot area too small");
    let mut pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let mut out = String::new();
    if !cfg.title.is_empty() {
        let _ = writeln!(out, "{}", cfg.title);
    }
    if pts.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (x_min, x_max) = pts
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(x, _)| {
            (lo.min(x), hi.max(x))
        });
    let (mut y_min, mut y_max) = cfg.y_range.unwrap_or_else(|| {
        pts.iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, y)| {
                (lo.min(y), hi.max(y))
            })
    });
    // Log handling: clamp non-positives to the smallest positive y.
    let log_floor = pts
        .iter()
        .map(|&(_, y)| y)
        .filter(|&y| y > 0.0)
        .fold(f64::INFINITY, f64::min);
    let transform = |y: f64| -> f64 {
        if cfg.log_y {
            y.max(log_floor.min(1.0)).log10()
        } else {
            y
        }
    };
    if cfg.log_y {
        for p in &mut pts {
            p.1 = transform(p.1);
        }
        y_min = transform(y_min.max(0.0));
        y_max = transform(y_max);
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    if (x_max - x_min).abs() < 1e-12 {
        // degenerate x range: widen artificially
        return render_single_x(series, cfg, x_min);
    }

    let w = cfg.width;
    let h = cfg.height;
    let mut grid = vec![vec![' '; w]; h];
    for (si, s) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for &(x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let ty = transform(y);
            let col = (((x - x_min) / (x_max - x_min)) * (w - 1) as f64).round() as usize;
            let row_f = ((ty - y_min) / (y_max - y_min)) * (h - 1) as f64;
            let row = h - 1 - (row_f.round() as usize).min(h - 1);
            grid[row][col.min(w - 1)] = marker;
        }
    }

    let y_label = |frac: f64| -> f64 {
        let v = y_min + frac * (y_max - y_min);
        if cfg.log_y {
            10f64.powf(v)
        } else {
            v
        }
    };
    for (r, row) in grid.iter().enumerate() {
        let frac = 1.0 - r as f64 / (h - 1) as f64;
        let label = if r == 0 || r == h - 1 || r == h / 2 {
            format!("{:>10.3}", y_label(frac))
        } else {
            " ".repeat(10)
        };
        let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{} +{}", " ".repeat(10), "-".repeat(w));
    let _ = writeln!(
        out,
        "{} {:<width$.3}{:>rest$.3}",
        " ".repeat(10),
        x_min,
        x_max,
        width = w / 2,
        rest = w - w / 2
    );
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", MARKERS[i % MARKERS.len()], s.label))
        .collect();
    let _ = writeln!(out, "{} {}", " ".repeat(10), legend.join("   "));
    out
}

fn render_single_x(series: &[Series], cfg: &PlotConfig, x: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "(single x = {x}):");
    for s in series {
        for &(_, y) in &s.points {
            let _ = writeln!(out, "  {:<16} {y:.4}", s.label);
        }
    }
    let _ = cfg;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lin(label: &str, slope: f64) -> Series {
        Series::new(
            label,
            (0..=10).map(|i| (i as f64, slope * i as f64)).collect(),
        )
    }

    #[test]
    fn renders_axes_and_legend() {
        let out = render(
            &[lin("up", 1.0), lin("steeper", 2.0)],
            &PlotConfig {
                title: "test plot".into(),
                ..Default::default()
            },
        );
        assert!(out.contains("test plot"));
        assert!(out.contains("* up"));
        assert!(out.contains("o steeper"));
        assert!(out.contains('+'), "x axis corner");
        // top-left label is the max y (20)
        assert!(out.contains("20.000"));
        assert!(out.lines().count() > 16);
    }

    #[test]
    fn increasing_series_slopes_up() {
        let out = render(&[lin("up", 1.0)], &PlotConfig::default());
        let rows: Vec<&str> = out.lines().filter(|l| l.contains('|')).collect();
        let top_pos = rows.first().unwrap().rfind('*').unwrap();
        let bottom_pos = rows.last().unwrap().find('*').unwrap();
        assert!(
            top_pos > bottom_pos,
            "high values must appear right of low values on an increasing line"
        );
    }

    #[test]
    fn log_scale_handles_zeros() {
        let s = Series::new(
            "mixed",
            vec![(1.0, 0.0), (2.0, 10.0), (3.0, 1_000.0), (4.0, 100_000.0)],
        );
        let out = render(
            &[s],
            &PlotConfig {
                log_y: true,
                ..Default::default()
            },
        );
        assert!(out.contains('*'));
    }

    #[test]
    fn empty_series_degrade_gracefully() {
        let out = render(&[Series::new("empty", vec![])], &PlotConfig::default());
        assert!(out.contains("(no data)"));
    }

    #[test]
    fn nan_points_are_skipped() {
        let s = Series::new("nan", vec![(0.0, f64::NAN), (1.0, 1.0), (2.0, 2.0)]);
        let out = render(&[s], &PlotConfig::default());
        assert!(out.contains('*'));
    }

    #[test]
    fn single_x_fallback() {
        let s = Series::new("point", vec![(5.0, 1.0)]);
        let out = render(&[s], &PlotConfig::default());
        assert!(out.contains("single x"));
    }
}
