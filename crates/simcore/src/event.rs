//! The pending-event set of the discrete-event engine.
//!
//! Since A17 the future-event list is a **ladder queue**: a stack of
//! timer-wheel rungs plus a sorted head run and an overflow rung, giving
//! near-O(1) scheduling and popping while reproducing the `(time, seq)`
//! FIFO order of the original binary heap bit-exactly (`seq` is a
//! monotonically increasing insertion counter that breaks ties between
//! events scheduled for the same instant):
//!
//! 1. **Head run** — the band currently being drained, sorted descending
//!    once at distillation so every pop is a `Vec::pop` off the back:
//!    O(1), no per-pop heap sift. Its length is one band's occupancy
//!    (typically tens of events), not the whole queue.
//! 2. **Rung stack** — hashed timer wheels ([`crate::wheel::TimerWheel`])
//!    of 256 time bands each. The outermost rung covers the whole pending
//!    horizon; when a distilled band is oversized (more than
//!    `SPAWN_THRESHOLD` entries spanning multiple instants) a fresh rung
//!    is pushed that subdivides just that band with 256× finer bands,
//!    recursively, until bands are small enough to sort. This is what
//!    keeps far-future outliers from degrading near-term resolution: the
//!    thousands of near-identical protocol timers (TTL refresh,
//!    Algorithm-H ticks, detector sweeps) batch-fire per fine band while
//!    outliers sit untouched in coarse outer bands. Drained rungs retire
//!    to a spare pool, so steady state allocates nothing.
//! 3. **Overflow rung** — events past the outermost window wait in an
//!    unsorted vector. When the whole rung stack has drained, the
//!    outermost rung is re-anchored over the overflow's exact span and
//!    the rung is redistributed — each event is touched O(1) amortized
//!    times on its way to the head.
//!
//! Event payloads travel **inline** in the wheel entries: a schedule is
//! one sequential append into a band vector, a distillation *swaps* the
//! band's vector with the (empty) head run — zero copies — and a pop
//! hands the payload straight off the back of the run. In steady state
//! the hot loop performs no allocation and no random-access reads at all:
//! every touch is a sequential append, an in-L1 sort, or a pop from a hot
//! vector tail. (Earlier variants — a payload slab indexed by 24-byte
//! entries, and a binary-heap head — each paid for it: the slab with a
//! cache miss per pop on deep queues, the heap with an O(log band) sift
//! per pop. This layout measured fastest.)
//!
//! Determinism is the hard constraint, not a nicety: [`HeapQueue`] — the
//! original `BinaryHeap` implementation — is retained as the reference
//! oracle, and `tests/queue_oracle.rs` property-tests that both queues
//! produce identical pop streams and accounting over random interleaved
//! schedule/pop/peek/clear sequences.

use crate::time::SimTime;
use crate::wheel::{TimerWheel, WheelEntry};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event together with its scheduled activation time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The total order of a wheel entry packed into one integer: time-major,
/// `seq` minor. A single u128 compare keeps the per-band sort branch-cheap.
#[inline]
fn pack_key<T>(e: &WheelEntry<T>) -> u128 {
    (u128::from(e.time.ticks()) << 64) | u128::from(e.seq)
}

/// A deterministic future-event list (ladder queue; see the module docs).
///
/// ```
/// use realtor_simcore::event::EventQueue;
/// use realtor_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The band currently being drained, sorted **descending** by
    /// `(time, seq)` so a pop is `Vec::pop` off the back — O(1), no heap
    /// sift. Sorted once per distilled band; the rare below-`bar` insert
    /// splices into place.
    head: Vec<WheelEntry<E>>,
    /// Sweep frontier: every pending event with `time < bar` is in `head`.
    /// Monotone over a queue's lifetime (reset only by `clear`).
    bar: SimTime,
    /// The rung stack, outermost first: each inner rung subdivides one
    /// band of its parent with 256× finer bands (spawned lazily when an
    /// oversized band is distilled). `rungs[i].limit` bounds the times the
    /// rung may hold; limits are non-increasing along the stack.
    rungs: Vec<Rung<E>>,
    /// Retired rungs kept for reuse (their 256 band vectors keep their
    /// capacity, so spawning a rung in steady state allocates nothing).
    spare: Vec<Rung<E>>,
    /// Scratch buffer for band distillation. Its allocation rotates with
    /// the head run and the wheel bands via swaps, so distilling copies
    /// nothing.
    band_buf: Vec<WheelEntry<E>>,
    /// Far-future overflow (unsorted) past the outermost rung's window.
    overflow: Vec<WheelEntry<E>>,
    /// Tick bounds of the overflow rung (`u64::MAX`/`0` when empty).
    overflow_min: u64,
    overflow_max: u64,
    len: usize,
    next_seq: u64,
    high_water: usize,
}

/// One ladder rung: a hashed timer wheel plus the first tick it must NOT
/// hold (`limit` = the end of the parent band it subdivides; `u64::MAX`
/// for the outermost rung).
#[derive(Debug, Clone)]
struct Rung<E> {
    wheel: TimerWheel<E>,
    limit: u64,
}

/// Distilled bands larger than this spawn an inner rung instead of being
/// sorted into the head run. Below it, one `O(b log b)` in-cache sort is
/// cheaper than re-bucketing plus the fixed cost of walking the finer
/// wheel's sparse bands.
const SPAWN_THRESHOLD: usize = 512;

/// Splice `entry` into a head run kept sorted descending by key, so the
/// earliest `(time, seq)` stays at the back (free function: callers hold
/// field borrows on the rest of the queue).
#[inline]
fn head_insert<T>(head: &mut Vec<WheelEntry<T>>, entry: WheelEntry<T>) {
    let key = pack_key(&entry);
    let idx = head.partition_point(|e| pack_key(e) > key);
    head.insert(idx, entry);
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            head: Vec::new(),
            bar: SimTime::ZERO,
            rungs: Vec::new(),
            spare: Vec::new(),
            band_buf: Vec::new(),
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            overflow_max: 0,
            len: 0,
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Create an empty queue sized for roughly `cap` pending events (the
    /// head run and distillation scratch get their expected steady-state
    /// capacity up front; band vectors grow on first use and are kept).
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.head.reserve(cap.min(1 << 12));
        q.band_buf.reserve(cap.min(1 << 12));
        q
    }

    /// Schedule `event` to fire at absolute time `time`.
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled (FIFO tie-breaking).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.route(WheelEntry {
            time,
            seq,
            item: event,
        });
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
    }

    /// Place `entry` on the rung that owns its time range.
    ///
    /// Ordering argument: times `< bar` join the head heap, which sorts
    /// them against the band being drained. Otherwise the innermost rung
    /// whose `limit` exceeds the time takes it — by the stack invariant
    /// that rung's unswept bands cover exactly `[bar-ish, limit)`, so the
    /// band hash is exact. A time under the rung's base (possible right
    /// after a spawn, before the bar caught up) joins the head too: it
    /// precedes everything the rung holds and the heap orders it against
    /// the in-flight band. Past the outermost window ⇒ overflow.
    #[inline]
    fn route(&mut self, entry: WheelEntry<E>) {
        if entry.time < self.bar {
            head_insert(&mut self.head, entry);
            return;
        }
        let t = entry.time.ticks();
        let mut entry = entry;
        for rung in self.rungs.iter_mut().rev() {
            if t < rung.limit {
                match rung.wheel.insert(entry) {
                    Ok(()) => return,
                    Err(rejected) => {
                        entry = rejected;
                        if t >= rung.wheel.window_end() {
                            // Past the outermost window: escalate to the
                            // overflow rung (inner rungs never hit this —
                            // their limit is inside their window).
                            break;
                        }
                        // Below the rung's base (the gap between the
                        // parent band's start and the spawned child's
                        // first entry): earlier than everything any rung
                        // holds, so the head run orders it correctly
                        // against the band being drained.
                        head_insert(&mut self.head, entry);
                        return;
                    }
                }
            }
        }
        self.overflow_min = self.overflow_min.min(t);
        self.overflow_max = self.overflow_max.max(t);
        self.overflow.push(entry);
    }

    /// Make the head heap non-empty if any event is pending: distill the
    /// innermost rung's next band (spawning a finer rung when the band is
    /// oversized), retiring drained rungs, and re-anchoring the outermost
    /// rung over the overflow's span when the whole ladder has drained.
    fn ensure_head(&mut self) {
        while self.head.is_empty() {
            let Some(rung) = self.rungs.last_mut() else {
                if !self.rebase_from_overflow() {
                    return; // queue is empty
                }
                continue;
            };
            if rung.wheel.is_empty() {
                // Retire the drained rung (outermost included: it is
                // recreated over the overflow span if anything is left).
                let mut retired = self.rungs.pop().expect("just peeked");
                retired.wheel.clear();
                self.spare.push(retired);
                continue;
            }
            debug_assert!(self.band_buf.is_empty());
            let band_end = rung
                .wheel
                .pop_band_swap(&mut self.band_buf)
                .expect("non-empty wheel");
            // Entries never exceed the rung's limit (enforced at routing),
            // so the sweep frontier is the tighter of the two bounds.
            let end = band_end.ticks().min(rung.limit);
            let band = &mut self.band_buf;
            let first_time = band.first().expect("bands are non-empty").time;
            let single_instant = band.iter().all(|e| e.time == first_time);
            if band.len() > SPAWN_THRESHOLD && !single_instant {
                // Oversized multi-instant band: subdivide with a fresh
                // rung over exactly this band's span (256× finer bands),
                // each entry re-bucketed in O(1).
                let min_t = band
                    .iter()
                    .map(|e| e.time.ticks())
                    .min()
                    .expect("non-empty band");
                let span = end.saturating_sub(1).saturating_sub(min_t);
                let mut inner = self.spare.pop().unwrap_or_else(|| Rung {
                    wheel: TimerWheel::new(),
                    limit: 0,
                });
                inner.limit = end;
                inner.wheel.rebase(
                    SimTime::from_ticks(min_t),
                    TimerWheel::<E>::width_log2_for(span),
                );
                for e in band.drain(..) {
                    inner
                        .wheel
                        .insert(e)
                        .ok()
                        .expect("spawned window covers its band");
                }
                self.rungs.push(inner);
            } else {
                self.bar = SimTime::from_ticks(end);
                // Zero-copy distill: the band's vector *becomes* the head
                // run (the head's drained allocation rotates back to the
                // wheel on the next distill). One sort per band buys O(1)
                // pops off the back.
                std::mem::swap(&mut self.head, band);
                self.head
                    .sort_unstable_by_key(|e| std::cmp::Reverse(pack_key(e)));
            }
        }
    }

    /// Build a fresh outermost rung covering the overflow's exact span and
    /// redistribute the overflow into it. Returns false when there was
    /// nothing to move (the queue is fully drained).
    fn rebase_from_overflow(&mut self) -> bool {
        if self.overflow.is_empty() {
            return false;
        }
        debug_assert!(self.rungs.is_empty());
        let base = SimTime::from_ticks(self.overflow_min);
        let span = self.overflow_max - self.overflow_min;
        let mut outer = self.spare.pop().unwrap_or_else(|| Rung {
            wheel: TimerWheel::new(),
            limit: 0,
        });
        outer.limit = u64::MAX;
        outer
            .wheel
            .rebase(base, TimerWheel::<E>::width_log2_for(span));
        for e in self.overflow.drain(..) {
            outer
                .wheel
                .insert(e)
                .ok()
                .expect("rebased window covers the overflow span");
        }
        self.rungs.push(outer);
        self.overflow_min = u64::MAX;
        self.overflow_max = 0;
        true
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.ensure_head();
        let entry = self.head.pop()?;
        self.len -= 1;
        Some((entry.time, entry.item))
    }

    /// Activation time of the earliest pending event, if any, distilling
    /// the next band first. The engine's hot loop uses this (amortized
    /// O(1)); [`EventQueue::peek_time`] is the read-only equivalent.
    #[inline]
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.ensure_head();
        self.head.last().map(|e| e.time)
    }

    /// Activation time of the earliest pending event, if any (read-only;
    /// scans the rungs without distilling).
    ///
    /// The head (when non-empty) always holds the global minimum; with an
    /// empty head the innermost non-empty rung does (rung ranges nest:
    /// inner ranges precede every outer rung's unswept range), and the
    /// overflow rung is past every window.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.head.last() {
            return Some(e.time);
        }
        for rung in self.rungs.iter().rev() {
            if let Some(t) = rung.wheel.peek_min_time() {
                return Some(t);
            }
        }
        if self.overflow.is_empty() {
            None
        } else {
            Some(SimTime::from_ticks(self.overflow_min))
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Largest number of events ever pending at once (lifetime high-water
    /// mark; `clear` does not reset it). Deterministic, so it is safe to
    /// surface in golden-pinned results.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drop all pending events (rung and scratch capacity is kept).
    pub fn clear(&mut self) {
        self.head.clear();
        while let Some(mut rung) = self.rungs.pop() {
            rung.wheel.clear();
            self.spare.push(rung);
        }
        self.band_buf.clear();
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.overflow_max = 0;
        self.bar = SimTime::ZERO;
        self.len = 0;
    }
}

/// The original binary-heap future-event list, retained as the
/// **reference oracle** for the ladder [`EventQueue`]: identical public
/// behaviour (same `(time, seq)` FIFO order, same accounting), O(log n)
/// schedule/pop. The differential property test (`tests/queue_oracle.rs`)
/// and the deep-queue stress bench both drive the two side by side.
#[derive(Debug, Clone)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    high_water: usize,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `time` (FIFO at ties).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
        if self.heap.len() > self.high_water {
            self.high_water = self.heap.len();
        }
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Activation time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Largest number of events ever pending at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &s in &[5u64, 1, 4, 2, 3] {
            q.schedule(SimTime::from_secs(s), s);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.next_time(), Some(SimTime::from_secs(1)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO + SimDuration::from_secs(1), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // scheduled_total counts lifetime scheduling, not current contents.
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        q.schedule(SimTime::from_secs(3), 3);
        assert_eq!(q.high_water(), 3);
        q.pop();
        q.pop();
        q.schedule(SimTime::from_secs(4), 4);
        // Depth is back to 2; the peak of 3 stands.
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 3);
        q.clear();
        assert_eq!(q.high_water(), 3, "lifetime mark survives clear");
    }

    #[test]
    fn zero_delay_rescheduling_stays_fifo() {
        // The DES hot pattern: while draining an instant, more events are
        // scheduled at that same instant and must fire after everything
        // already queued there (bar never strands them).
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, 0);
        q.schedule(t + SimDuration::from_secs(1), 100);
        assert_eq!(q.pop(), Some((t, 0)));
        q.schedule(t, 1); // scheduled "now", mid-drain
        q.schedule(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
        assert_eq!(q.pop(), Some((t + SimDuration::from_secs(1), 100)));
    }

    #[test]
    fn far_future_outliers_ride_the_overflow_rung() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1_000_000), "horizon");
        for i in 0..100u64 {
            q.schedule(SimTime::from_ticks(i), "near");
        }
        q.schedule(SimTime::MAX, "sentinel");
        for i in 0..100u64 {
            assert_eq!(q.pop().map(|(_, e)| e), Some("near"), "near event {i}");
        }
        assert_eq!(q.pop().map(|(t, _)| t), Some(SimTime::from_secs(1_000_000)));
        assert_eq!(q.pop().map(|(t, _)| t), Some(SimTime::MAX));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_matches_oracle() {
        let mut rng = crate::rng::SimRng::from_seed(0xA17);
        let mut ladder = EventQueue::new();
        let mut oracle = HeapQueue::new();
        let mut now = 0u64;
        for step in 0..50_000u64 {
            if !rng.u64().is_multiple_of(3) || ladder.is_empty() {
                // Mixed bands: mostly near-future, some same-instant bursts,
                // occasional far outliers.
                let t = now
                    + match rng.u64() % 10 {
                        0 => 0,
                        1..=7 => rng.u64() % 1_000,
                        _ => 1_000_000 + rng.u64() % 1_000_000,
                    };
                ladder.schedule(SimTime::from_ticks(t), step);
                oracle.schedule(SimTime::from_ticks(t), step);
            } else {
                let a = ladder.pop();
                let b = oracle.pop();
                assert_eq!(a, b, "divergence at step {step}");
                if let Some((t, _)) = a {
                    now = t.ticks();
                }
            }
            assert_eq!(ladder.len(), oracle.len());
        }
        loop {
            let a = ladder.pop();
            let b = oracle.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(ladder.high_water(), oracle.high_water());
        assert_eq!(ladder.scheduled_total(), oracle.scheduled_total());
    }
}
