//! The pending-event set of the discrete-event engine.
//!
//! A binary heap keyed on `(time, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. The counter breaks ties between
//! events scheduled for the same instant in FIFO order, which makes the whole
//! simulation deterministic: two runs with the same seed schedule the same
//! events in the same order and therefore pop them in the same order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event together with its scheduled activation time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use realtor_simcore::event::EventQueue;
/// use realtor_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `time`.
    ///
    /// Events scheduled for the same instant fire in the order they were
    /// scheduled (FIFO tie-breaking).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
        if self.heap.len() > self.high_water {
            self.high_water = self.heap.len();
        }
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Activation time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Largest number of events ever pending at once (lifetime high-water
    /// mark; `clear` does not reset it). Deterministic, so it is safe to
    /// surface in golden-pinned results.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &s in &[5u64, 1, 4, 2, 3] {
            q.schedule(SimTime::from_secs(s), s);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO + SimDuration::from_secs(1), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        // scheduled_total counts lifetime scheduling, not current contents.
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        q.schedule(SimTime::from_secs(3), 3);
        assert_eq!(q.high_water(), 3);
        q.pop();
        q.pop();
        q.schedule(SimTime::from_secs(4), 4);
        // Depth is back to 2; the peak of 3 stands.
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 3);
        q.clear();
        assert_eq!(q.high_water(), 3, "lifetime mark survives clear");
    }
}
