//! # realtor-simcore — discrete-event simulation substrate
//!
//! The foundation every Section-5 experiment of the REALTOR paper runs on:
//!
//! * [`time`] — integer virtual time ([`SimTime`], [`SimDuration`]),
//! * [`event`] — a deterministic future-event list: the ladder
//!   [`EventQueue`] plus the retained binary-heap oracle
//!   ([`event::HeapQueue`]),
//! * [`wheel`] — the hashed timer wheel backing the ladder queue's
//!   middle rung ([`wheel::TimerWheel`]),
//! * [`engine`] — the event loop ([`Engine`], [`Handler`], [`Context`]),
//! * [`rng`] — named deterministic random streams (in-tree xoshiro256++)
//!   and the samplers the paper's workload needs (exponential task lengths,
//!   Poisson arrivals),
//! * [`check`] — a seed-driven property-test harness (`forall` + shrinking)
//!   replacing the external `proptest` dependency,
//! * [`stats`] — counters, Welford mean/variance, time-weighted averages,
//!   linear histograms, and the mergeable HDR-style
//!   [`stats::LogHistogram`],
//! * [`metrics`] — point-in-time [`metrics::MetricsSnapshot`]s rendered in
//!   the Prometheus text exposition format for live observability,
//! * [`table`] — CSV/markdown result tables used by the experiment harness,
//! * [`pool`] — order-preserving parallel execution with an explicit
//!   worker count (the sweep runner's execution core),
//! * [`merge`] — grid-order streamed merging of per-cell CSV/JSONL chunks,
//! * [`plot`] — terminal ASCII line plots for the reproduced figures,
//! * [`trace`] — deterministic structured tracing ([`Tracer`], typed
//!   [`trace::TraceEvent`]s, JSON-lines export) and the named counter/gauge
//!   registry; a no-op sink when disabled so golden runs stay bit-exact.
//!
//! The engine is deliberately minimal and fully deterministic: identical
//! seeds produce identical event orders (FIFO tie-breaking at equal
//! timestamps), which the workspace-level integration tests assert.
//!
//! ```
//! use realtor_simcore::prelude::*;
//!
//! struct Ping(u32);
//! impl Handler for Ping {
//!     type Event = ();
//!     fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
//!         self.0 += 1;
//!         if self.0 < 3 {
//!             ctx.schedule_in(SimDuration::from_secs(1), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.schedule_at(SimTime::ZERO, ());
//! let mut model = Ping(0);
//! engine.run_until(&mut model, SimTime::from_secs(100));
//! assert_eq!(model.0, 3);
//! assert_eq!(engine.now(), SimTime::from_secs(2));
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod engine;
pub mod event;
pub mod merge;
pub mod metrics;
pub mod plot;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;
pub mod trace;
pub mod wheel;

pub use engine::{Context, Engine, Handler, RunOutcome};
pub use event::{EventQueue, HeapQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::Tracer;

/// Convenient glob import for simulation models.
pub mod prelude {
    pub use crate::check::{forall, gen, PropResult};
    pub use crate::engine::{Context, Engine, Handler, RunOutcome};
    pub use crate::event::EventQueue;
    pub use crate::rng::SimRng;
    pub use crate::stats::{Counter, Histogram, LogHistogram, TimeWeighted, Welford};
    pub use crate::table::{Cell, Table};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{TraceEvent, TraceKind, TraceValue, Tracer};
}
