//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use realtor_simcore::prelude::*;

proptest! {
    /// Popping the event queue yields a non-decreasing time sequence, and at
    /// equal times preserves insertion (FIFO) order.
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ticks(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some((t, seq)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(prev) = last_seq_at_time {
                    // same timestamp: insertion order must be preserved
                    if times[prev] == times[seq] {
                        prop_assert!(seq > prev);
                    }
                }
            }
            last_time = t;
            last_seq_at_time = Some(seq);
        }
    }

    /// Time arithmetic: (a + d) - d == a and subtraction inverts addition.
    #[test]
    fn time_add_sub_inverse(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_ticks(a);
        let dur = SimDuration::from_ticks(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur) - t, dur);
    }

    /// Welford mean always lies within [min, max] and matches a naive mean.
    #[test]
    fn welford_mean_in_bounds(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        let naive: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        prop_assert!(w.mean() >= w.min() - 1e-9);
        prop_assert!(w.mean() <= w.max() + 1e-9);
        prop_assert!(w.variance() >= 0.0);
    }

    /// Merging two Welford accumulators equals one sequential pass.
    #[test]
    fn welford_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 0..100),
        ys in prop::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut all = Welford::new();
        for &x in xs.iter().chain(ys.iter()) {
            all.record(x);
        }
        let mut a = Welford::new();
        for &x in &xs { a.record(x); }
        let mut b = Welford::new();
        for &y in &ys { b.record(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        if all.count() > 0 {
            prop_assert!((a.mean() - all.mean()).abs() < 1e-7);
            prop_assert!((a.variance() - all.variance()).abs() < 1e-5);
        }
    }

    /// Histogram quantiles are monotone in q and within [lo, hi].
    #[test]
    fn histogram_quantile_monotone(xs in prop::collection::vec(0.0f64..100.0, 1..300)) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &x in &xs {
            h.record(x);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            prop_assert!(q >= prev - 1e-9, "quantile not monotone");
            prop_assert!((0.0..=100.0).contains(&q));
            prev = q;
        }
    }

    /// Exponential samples are positive and the empirical mean is sane.
    #[test]
    fn exp_sampler_positive(seed in 0u64..u64::MAX, mean in 0.01f64..100.0) {
        let mut r = SimRng::from_seed(seed);
        for _ in 0..50 {
            let x = r.exp(mean);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    /// sample_indices always returns distinct, in-range indices.
    #[test]
    fn sample_indices_valid(seed in 0u64..u64::MAX, n in 1usize..100, k in 0usize..120) {
        let mut r = SimRng::from_seed(seed);
        let s = r.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < n));
    }

    /// The engine clock never goes backwards regardless of how the model
    /// schedules events.
    #[test]
    fn engine_clock_monotone(delays in prop::collection::vec(0u64..50, 1..100)) {
        struct M {
            delays: Vec<u64>,
            idx: usize,
            times: Vec<SimTime>,
        }
        impl Handler for M {
            type Event = ();
            fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
                self.times.push(ctx.now());
                if self.idx < self.delays.len() {
                    let d = self.delays[self.idx];
                    self.idx += 1;
                    ctx.schedule_in(SimDuration::from_ticks(d), ());
                }
            }
        }
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, ());
        let mut m = M { delays, idx: 0, times: vec![] };
        engine.run_until(&mut m, SimTime::MAX);
        for w in m.times.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }
}
