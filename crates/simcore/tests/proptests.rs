//! Property-based tests for the simulation substrate, on the in-tree
//! `check` harness.

use realtor_simcore::prelude::*;
use realtor_simcore::{prop_assert, prop_assert_eq};

/// Popping the event queue yields a non-decreasing time sequence, and at
/// equal times preserves insertion (FIFO) order.
#[test]
fn event_queue_pops_sorted_and_stable() {
    forall(
        "event_queue_pops_sorted_and_stable",
        0x51AC01,
        256,
        |r| gen::vec(r, 1, 200, |r| gen::u64_in(r, 0, 1000)),
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ticks(t), i);
            }
            let mut last_time = SimTime::ZERO;
            let mut last_seq_at_time: Option<usize> = None;
            while let Some((t, seq)) = q.pop() {
                prop_assert!(t >= last_time);
                if t == last_time {
                    if let Some(prev) = last_seq_at_time {
                        // same timestamp: insertion order must be preserved
                        if times[prev] == times[seq] {
                            prop_assert!(seq > prev);
                        }
                    }
                }
                last_time = t;
                last_seq_at_time = Some(seq);
            }
            Ok(())
        },
    );
}

/// Time arithmetic: (a + d) - d == a and subtraction inverts addition.
#[test]
fn time_add_sub_inverse() {
    forall(
        "time_add_sub_inverse",
        0x51AC02,
        256,
        |r| {
            (
                gen::u64_in(r, 0, u64::MAX / 4),
                gen::u64_in(r, 0, u64::MAX / 4),
            )
        },
        |&(a, d)| {
            let t = SimTime::from_ticks(a);
            let dur = SimDuration::from_ticks(d);
            prop_assert_eq!((t + dur) - dur, t);
            prop_assert_eq!((t + dur) - t, dur);
            Ok(())
        },
    );
}

/// Welford mean always lies within [min, max] and matches a naive mean.
#[test]
fn welford_mean_in_bounds() {
    forall(
        "welford_mean_in_bounds",
        0x51AC03,
        256,
        |r| gen::vec(r, 1, 300, |r| gen::f64_in(r, -1e6, 1e6)),
        |xs| {
            let mut w = Welford::new();
            for &x in xs {
                w.record(x);
            }
            let naive: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((w.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
            prop_assert!(w.mean() >= w.min() - 1e-9);
            prop_assert!(w.mean() <= w.max() + 1e-9);
            prop_assert!(w.variance() >= 0.0);
            Ok(())
        },
    );
}

/// Merging two Welford accumulators equals one sequential pass.
#[test]
fn welford_merge_associative() {
    forall(
        "welford_merge_associative",
        0x51AC04,
        256,
        |r| {
            (
                gen::vec(r, 0, 100, |r| gen::f64_in(r, -1e3, 1e3)),
                gen::vec(r, 0, 100, |r| gen::f64_in(r, -1e3, 1e3)),
            )
        },
        |(xs, ys)| {
            let mut all = Welford::new();
            for &x in xs.iter().chain(ys.iter()) {
                all.record(x);
            }
            let mut a = Welford::new();
            for &x in xs {
                a.record(x);
            }
            let mut b = Welford::new();
            for &y in ys {
                b.record(y);
            }
            a.merge(&b);
            prop_assert_eq!(a.count(), all.count());
            if all.count() > 0 {
                prop_assert!((a.mean() - all.mean()).abs() < 1e-7);
                prop_assert!((a.variance() - all.variance()).abs() < 1e-5);
            }
            Ok(())
        },
    );
}

/// Histogram quantiles are monotone in q and within [lo, hi].
#[test]
fn histogram_quantile_monotone() {
    forall(
        "histogram_quantile_monotone",
        0x51AC05,
        256,
        |r| gen::vec(r, 1, 300, |r| gen::f64_in(r, 0.0, 100.0)),
        |xs| {
            let mut h = Histogram::new(0.0, 100.0, 20);
            for &x in xs {
                h.record(x);
            }
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=10 {
                let q = h.quantile(i as f64 / 10.0);
                prop_assert!(q >= prev - 1e-9, "quantile not monotone");
                prop_assert!((0.0..=100.0).contains(&q));
                prev = q;
            }
            Ok(())
        },
    );
}

/// Exponential samples are positive and finite for any seed and mean.
#[test]
fn exp_sampler_positive() {
    forall(
        "exp_sampler_positive",
        0x51AC06,
        256,
        |r| (gen::any_u64(r), gen::f64_in(r, 0.01, 100.0)),
        |&(seed, mean)| {
            let mut r = SimRng::from_seed(seed);
            for _ in 0..50 {
                let x = r.exp(mean);
                prop_assert!(x > 0.0 && x.is_finite());
            }
            Ok(())
        },
    );
}

/// sample_indices always returns distinct, in-range indices.
#[test]
fn sample_indices_valid() {
    forall(
        "sample_indices_valid",
        0x51AC07,
        256,
        |r| {
            (
                gen::any_u64(r),
                gen::usize_in(r, 1, 100),
                gen::usize_in(r, 0, 120),
            )
        },
        |&(seed, n, k)| {
            let mut r = SimRng::from_seed(seed);
            let s = r.sample_indices(n, k);
            prop_assert_eq!(s.len(), k.min(n));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), s.len());
            prop_assert!(s.iter().all(|&i| i < n));
            Ok(())
        },
    );
}

/// The engine clock never goes backwards regardless of how the model
/// schedules events.
#[test]
fn engine_clock_monotone() {
    struct M {
        delays: Vec<u64>,
        idx: usize,
        times: Vec<SimTime>,
    }
    impl Handler for M {
        type Event = ();
        fn handle(&mut self, _: (), ctx: &mut Context<'_, ()>) {
            self.times.push(ctx.now());
            if self.idx < self.delays.len() {
                let d = self.delays[self.idx];
                self.idx += 1;
                ctx.schedule_in(SimDuration::from_ticks(d), ());
            }
        }
    }
    forall(
        "engine_clock_monotone",
        0x51AC08,
        256,
        |r| gen::vec(r, 1, 100, |r| gen::u64_in(r, 0, 50)),
        |delays| {
            let mut engine = Engine::new();
            engine.schedule_at(SimTime::ZERO, ());
            let mut m = M {
                delays: delays.clone(),
                idx: 0,
                times: vec![],
            };
            engine.run_until(&mut m, SimTime::MAX);
            for w in m.times.windows(2) {
                prop_assert!(w[1] >= w[0]);
            }
            Ok(())
        },
    );
}
