//! Differential property test: the ladder `EventQueue` against the
//! retained `HeapQueue` (binary-heap) reference oracle.
//!
//! The A17 determinism contract is that the ladder queue is *bit-exact*
//! observationally equivalent to the heap it replaced: identical pop
//! streams (same `(time, event)` pairs, FIFO at equal instants), identical
//! `peek_time`, and identical `len`/`high_water`/`scheduled_total`
//! accounting — over any interleaving of schedule/pop/peek/clear,
//! including same-instant bursts (which exercise the wheel's batch-fired
//! bands) and far-future outliers (which exercise the overflow rung and
//! the window rebase).

use realtor_simcore::event::HeapQueue;
use realtor_simcore::prelude::*;
use realtor_simcore::{prop_assert, prop_assert_eq};

/// One scripted operation against both queues.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `cursor + offset` (cursor = last popped time, so the
    /// script stays causal like a real simulation).
    Schedule { offset: u64 },
    /// Schedule `count` events all at `cursor + offset` (FIFO burst).
    Burst { offset: u64, count: usize },
    /// Schedule a far-future outlier at `cursor + 10^12 + offset`.
    Outlier { offset: u64 },
    /// Pop one event from both queues and compare.
    Pop,
    /// Compare `peek_time` (read-only on both).
    Peek,
    /// Clear both queues.
    Clear,
}

// List shrinking (dropping ops) is what matters for minimal counterexamples;
// individual ops shrink no further.
impl realtor_simcore::check::Shrink for Op {}

fn gen_op(r: &mut SimRng) -> Op {
    match gen::u64_in(r, 0, 99) {
        0..=34 => Op::Schedule {
            offset: gen::u64_in(r, 0, 5_000),
        },
        35..=44 => Op::Burst {
            offset: gen::u64_in(r, 0, 1_000),
            count: gen::usize_in(r, 2, 40),
        },
        45..=54 => Op::Outlier {
            offset: gen::u64_in(r, 0, 1_000_000_000),
        },
        55..=84 => Op::Pop,
        85..=97 => Op::Peek,
        _ => Op::Clear,
    }
}

#[test]
fn ladder_queue_matches_heap_oracle() {
    forall(
        "ladder_queue_matches_heap_oracle",
        0x0A17,
        192,
        |r| gen::vec(r, 1, 400, gen_op),
        |ops| {
            let mut ladder = EventQueue::new();
            let mut oracle = HeapQueue::new();
            let mut cursor: u64 = 0;
            let mut payload: u64 = 0;
            for op in ops {
                match *op {
                    Op::Schedule { offset } => {
                        let t = SimTime::from_ticks(cursor.saturating_add(offset));
                        ladder.schedule(t, payload);
                        oracle.schedule(t, payload);
                        payload += 1;
                    }
                    Op::Burst { offset, count } => {
                        let t = SimTime::from_ticks(cursor.saturating_add(offset));
                        for _ in 0..count {
                            ladder.schedule(t, payload);
                            oracle.schedule(t, payload);
                            payload += 1;
                        }
                    }
                    Op::Outlier { offset } => {
                        let t = SimTime::from_ticks(
                            cursor
                                .saturating_add(1_000_000_000_000)
                                .saturating_add(offset),
                        );
                        ladder.schedule(t, payload);
                        oracle.schedule(t, payload);
                        payload += 1;
                    }
                    Op::Pop => {
                        let a = ladder.pop();
                        let b = oracle.pop();
                        prop_assert_eq!(a, b, "pop streams diverged");
                        if let Some((t, _)) = a {
                            cursor = t.ticks();
                        }
                    }
                    Op::Peek => {
                        prop_assert_eq!(ladder.peek_time(), oracle.peek_time());
                    }
                    Op::Clear => {
                        ladder.clear();
                        oracle.clear();
                    }
                }
                prop_assert_eq!(ladder.len(), oracle.len());
                prop_assert_eq!(ladder.is_empty(), oracle.is_empty());
                prop_assert_eq!(ladder.high_water(), oracle.high_water());
                prop_assert_eq!(ladder.scheduled_total(), oracle.scheduled_total());
            }
            // Drain both to the end: the full residual streams must agree.
            loop {
                let a = ladder.pop();
                let b = oracle.pop();
                prop_assert_eq!(a, b, "drain streams diverged");
                if a.is_none() {
                    break;
                }
            }
            prop_assert!(ladder.is_empty());
            prop_assert_eq!(ladder.high_water(), oracle.high_water());
            Ok(())
        },
    );
}

/// The engine's `next_time` accessor (which distills bands) must report
/// the same instants the read-only `peek_time` does.
#[test]
fn next_time_agrees_with_peek_time() {
    forall(
        "next_time_agrees_with_peek_time",
        0x0A18,
        128,
        |r| gen::vec(r, 1, 200, |r| gen::u64_in(r, 0, 1_000_000)),
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ticks(t), i);
            }
            while !q.is_empty() {
                let peeked = q.peek_time();
                let ensured = q.next_time();
                prop_assert_eq!(peeked, ensured);
                let (t, _) = q.pop().expect("non-empty");
                prop_assert_eq!(Some(t), ensured);
            }
            Ok(())
        },
    );
}
