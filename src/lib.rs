//! # realtor — dynamic resource discovery for application survivability
//!
//! A production-quality Rust reproduction of *"Dynamic Resource Discovery
//! for Applications Survivability in Distributed Real-Time Systems"*
//! (Choi, Rho, Bettati — IPDPS 2003): the **REALTOR** protocol, the four
//! baseline discovery schemes it is compared against, the discrete-event
//! simulation that produces the paper's Figures 5–8, and a thread-per-host
//! Agile Objects runtime that reproduces the Figure-9 cluster measurement.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`simcore`] | `realtor-simcore` | discrete-event engine, virtual time, RNG, statistics |
//! | [`net`] | `realtor-net` | topologies, routing, message-cost model, fault injection |
//! | [`core`] | `realtor-core` | REALTOR + baselines, Algorithms H and P, communities |
//! | [`node`] | `realtor-node` | tasks, work queues, EDF/CUS scheduling, admission |
//! | [`workload`] | `realtor-workload` | arrival processes, size distributions, traces, attacks |
//! | [`sim`] | `realtor-sim` | the Section-5 simulation harness and sweeps |
//! | [`runner`] | `realtor-runner` | deterministic parallel sweep runner (grids, CI-width replication) |
//! | [`agile`] | `realtor-agile` | the Section-6 thread-per-host cluster runtime |
//!
//! ## Quickstart
//!
//! Run the paper's experiment at one operating point:
//!
//! ```
//! use realtor::core::ProtocolKind;
//! use realtor::sim::{run_scenario, Scenario};
//!
//! // 5x5 mesh, 100-second queues, Poisson(6.0) arrivals of exponential
//! // (mean 5 s) tasks, 200 simulated seconds, seed 1.
//! let scenario = Scenario::paper(ProtocolKind::Realtor, 6.0, 200, 1);
//! let result = run_scenario(&scenario);
//! assert!(result.offered > 0);
//! assert!(result.admission_probability() > 0.8);
//! ```
//!
//! See `examples/` for runnable end-to-end programs and the `experiments`
//! binary for the full figure reproduction.

pub use realtor_agile as agile;
pub use realtor_core as core;
pub use realtor_net as net;
pub use realtor_node as node;
pub use realtor_runner as runner;
pub use realtor_sim as sim;
pub use realtor_simcore as simcore;
pub use realtor_workload as workload;
