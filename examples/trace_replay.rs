//! Trace record & replay — capture a workload to a text file, replay it
//! against two protocol configurations, and diff the outcomes. This is the
//! paired-comparison workflow a downstream user needs when tuning REALTOR
//! parameters against a production-like trace.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use realtor::core::{ProtocolConfig, ProtocolKind};
use realtor::sim::{run_scenario, Scenario};
use realtor::simcore::{SimDuration, SimTime};
use realtor::workload::{Trace, WorkloadSpec};

fn main() {
    // 1. Record: generate a workload once and serialize it.
    let spec = WorkloadSpec::paper(7.0, 25, SimTime::from_secs(2_000), 2026);
    let trace = spec.generate();
    let path = std::env::temp_dir().join("realtor_demo_trace.txt");
    std::fs::write(&path, trace.to_text()).expect("write trace");
    println!(
        "recorded {} arrivals ({:.0} s of work) to {}",
        trace.len(),
        trace.offered_work_secs(),
        path.display()
    );

    // 2. Replay: read it back and run two REALTOR configurations on the
    //    byte-identical workload.
    let replayed = Trace::from_text(&std::fs::read_to_string(&path).expect("read trace"))
        .expect("parse trace");
    assert_eq!(replayed.len(), trace.len());

    let configs = [
        ("paper defaults (Upper_limit 100)", ProtocolConfig::paper()),
        (
            "tight backoff (Upper_limit 10, alpha 1.0)",
            ProtocolConfig::paper()
                .with_alpha(1.0)
                .with_upper_limit(SimDuration::from_secs(10)),
        ),
    ];
    println!(
        "\n{:<44} {:>10} {:>12} {:>12}",
        "configuration", "admission", "cost/task", "HELP floods"
    );
    for (name, cfg) in configs {
        // The scenario regenerates the same trace from the same spec, so
        // both configurations see the recorded workload.
        let scenario = Scenario::paper(ProtocolKind::Realtor, 7.0, 2_000, 2026)
            .with_protocol_config(cfg);
        let r = run_scenario(&scenario);
        println!(
            "{:<44} {:>10.4} {:>12.2} {:>12}",
            name,
            r.admission_probability(),
            r.cost_per_admitted_task(),
            r.ledger.help_count
        );
    }
    println!(
        "\nSame workload, different Algorithm-H tuning: admission barely moves while\n\
         discovery traffic shifts — the adaptive interval trades messages, not tasks."
    );
    let _ = std::fs::remove_file(&path);
}
