//! Quickstart: run the paper's core experiment at one operating point and
//! print every headline metric.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use realtor::core::ProtocolKind;
use realtor::sim::{run_scenario, Scenario};

fn main() {
    // The paper's Section-5 setup: 5x5 mesh (25 nodes, 40 links), one
    // 100-second work queue per node, system-wide Poisson arrivals of
    // exponentially distributed tasks (mean 5 s), one-shot migration.
    let lambda = 7.0; // tasks per second, system-wide (saturation is at 5.0)
    let horizon_secs = 5_000;
    let seed = 42;

    println!("REALTOR quickstart — lambda={lambda}, horizon={horizon_secs}s\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "protocol", "offered", "admitted", "rejected", "admission", "cost/task", "migr-rate"
    );
    for kind in ProtocolKind::ALL {
        let result = run_scenario(&Scenario::paper(kind, lambda, horizon_secs, seed));
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>12.4} {:>12.2} {:>10.4}",
            kind.label(),
            result.offered,
            result.admitted(),
            result.rejected,
            result.admission_probability(),
            result.cost_per_admitted_task(),
            result.migration_rate(),
        );
    }
    println!(
        "\nAll five protocols saw the identical workload trace (paired comparison),\n\
         exactly as in the paper's methodology. REALTOR combines top-tier admission\n\
         probability with a small fraction of pure-push message cost."
    );
}
