//! Capacity planning — a downstream-user scenario: given a real-time
//! workload, how much headroom does a deployment need before admission
//! probability degrades, and which discovery protocol buys the most
//! effective capacity per message?
//!
//! Sweeps offered load as a fraction of system capacity on three topologies
//! and reports the admission knee for REALTOR vs periodic push.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use realtor::core::ProtocolKind;
use realtor::net::Topology;
use realtor::sim::{run_scenario, Scenario};

fn main() {
    let topologies = [
        Topology::mesh(5, 5),
        Topology::torus(5, 5),
        Topology::random_connected(25, 0.2, 9),
    ];
    let mean_task = 5.0;
    println!("Admission probability vs offered load (fraction of total capacity)\n");
    for topo in topologies {
        let n = topo.node_count();
        println!(
            "topology {} — {n} nodes, {} links, mean path {:.2} hops",
            topo.name(),
            topo.link_count(),
            realtor::net::Routing::new(&topo).mean_path_length()
        );
        println!(
            "  {:>6} {:>9} | {:>12} {:>14} | {:>12} {:>14}",
            "load", "lambda", "REALTOR", "(cost/task)", "Push-1", "(cost/task)"
        );
        for load in [0.6, 0.8, 0.9, 1.0, 1.1, 1.3, 1.6] {
            // offered work = lambda * mean_task; capacity = n work-s/s
            let lambda = load * n as f64 / mean_task;
            let mut row = format!("  {load:>6.2} {lambda:>9.2} |");
            for kind in [ProtocolKind::Realtor, ProtocolKind::PurePush] {
                let scenario = Scenario::paper(kind, lambda, 2_000, 11)
                    .with_topology(topo.clone());
                let r = run_scenario(&scenario);
                row.push_str(&format!(
                    " {:>12.4} {:>14.2} |",
                    r.admission_probability(),
                    r.cost_per_admitted_task()
                ));
            }
            println!("{row}");
        }
        println!();
    }
    println!(
        "Reading the knee: admission stays ~1.0 until offered load crosses capacity\n\
         (load 1.0), then degrades. REALTOR tracks the periodic-push curve while\n\
         spending an order of magnitude fewer messages per admitted task."
    );
}
