//! Attack survivability — the paper's motivating scenario: a third of the
//! system comes under external attack mid-run; components must migrate to
//! surviving nodes, and the system must recover when the victims return.
//!
//! ```text
//! cargo run --release --example attack_survivability
//! ```

use realtor::core::ProtocolKind;
use realtor::net::TargetingStrategy;
use realtor::sim::{run_scenario, Scenario};
use realtor::simcore::{SimDuration, SimTime};
use realtor::workload::AttackScenario;

fn main() {
    let horizon = 3_000u64;
    let lambda = 4.0;
    let strike = SimTime::from_secs(1_000);
    let recover = SimTime::from_secs(2_000);
    let victims = 8; // about a third of the 25-node mesh

    println!(
        "Strike-and-recover: {victims}/25 nodes killed at t={strike}s, restored at t={recover}s"
    );
    println!("lambda={lambda} (light load: survivors have spare capacity)\n");

    for kind in [ProtocolKind::Realtor, ProtocolKind::PurePush, ProtocolKind::PurePull] {
        let scenario = Scenario::paper(kind, lambda, horizon, 7)
            .with_attack(
                AttackScenario::strike_and_recover(strike, recover, victims),
                TargetingStrategy::Region, // a localized attack, e.g. one rack
            )
            .with_window(SimDuration::from_secs(250));
        let result = run_scenario(&scenario);

        println!("{} — overall admission {:.4}", kind.label(), result.admission_probability());
        println!("  window    alive  admission");
        for w in &result.windows {
            let bar_len = (w.admission_probability() * 40.0).round() as usize;
            println!(
                "  t={:>6.0}s  {:>3}    {:.3} {}",
                w.start.as_secs_f64(),
                w.alive_nodes,
                w.admission_probability(),
                "#".repeat(bar_len)
            );
        }
        println!(
            "  tasks offered to dead nodes (unavoidably lost): {}\n",
            result.lost_to_attacks
        );
    }
    println!(
        "REALTOR's soft state (communities expire, pledges age out) means dead nodes\n\
         simply vanish from pledge lists — no repair protocol runs at recovery time."
    );
}
