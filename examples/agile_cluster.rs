//! Agile Objects cluster — the paper's Section-6 measurement on the
//! thread-per-host runtime: 20 hosts, 50-second queues, REALTOR over
//! UDP-like / multicast-like / TCP-like in-process transports, running at a
//! scaled clock (1 simulated second = 0.5 ms wall).
//!
//! ```text
//! cargo run --release --example agile_cluster
//! ```

use realtor::agile::{Cluster, ClusterConfig};
use realtor::simcore::SimTime;
use realtor::workload::WorkloadSpec;

fn main() {
    let hosts = 20;
    println!("Figure-9 style cluster measurement: {hosts} hosts, queue 50 s, REALTOR\n");
    println!(
        "{:>7} {:>9} {:>9} {:>10} {:>11} {:>12} {:>13}",
        "lambda", "offered", "admitted", "rejected", "migrations", "HELP-floods", "admission"
    );
    for lambda in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        let mut cfg = ClusterConfig {
            hosts,
            time_scale: 2_000.0,
            seed: 42,
            ..Default::default()
        };
        cfg.host.capacity_secs = 50.0;

        let cluster = Cluster::start(&cfg);
        let trace =
            WorkloadSpec::paper(lambda, hosts, SimTime::from_secs(300), 42).generate();
        cluster.run_workload(&trace);
        cluster.settle(2.0);
        let report = cluster.shutdown();

        println!(
            "{:>7.1} {:>9} {:>9} {:>10} {:>11} {:>12} {:>13.4}",
            lambda,
            report.offered,
            report.admitted(),
            report.rejected,
            report.migrations,
            report.helps_sent,
            report.admission_probability(),
        );
    }
    println!(
        "\nEvery host runs the *same* REALTOR code as the discrete-event simulator —\n\
         here driven by real threads, real channels and a scaled wall clock.\n\
         Mean migration latency includes admission negotiation and state transfer."
    );
}
