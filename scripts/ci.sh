#!/usr/bin/env bash
# Offline CI gate for the hermetic workspace.
#
# Everything here must pass on a machine with no network access and no cargo
# cache beyond the toolchain: the workspace has zero external dependencies
# by policy (enforced by tests/hermetic.rs).
#
# Steps:
#   1. release build, all targets, offline
#   2. full test suite, offline
#   3. clippy (gated: skipped with a notice if the component is absent)
#   4. bench smoke run -> results/bench_smoke.json
#   5. quickstart determinism: two runs, byte-identical stdout
#   6. lossy-chaos smoke: 10% datagram loss + node strike + link jamming;
#      asserts graceful degradation, determinism, and finite recovery
#   7. failover smoke: failure detection + evacuation + crash recovery;
#      asserts detection, re-homed checkpoints, landed evacuations and
#      determinism, and emits results/failover_summary.csv
#   8. trace smoke: traced Figure-5 cell -> results/trace_paper.jsonl;
#      the subcommand itself validates every JSON line, re-proves
#      tracing-on == tracing-off, and reconciles registry vs SimResult
#   9. println guard: library code in crates/core and crates/sim must go
#      through the trace layer, never stdout/stderr

set -euo pipefail
cd "$(dirname "$0")/.."

say() { printf '\n==> %s\n' "$*"; }

say "build (release, all targets, offline)"
cargo build --release --workspace --all-targets --offline

say "test (offline)"
cargo test --workspace --offline --quiet

say "clippy"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "clippy not installed; skipping (install with: rustup component add clippy)"
fi

say "bench smoke -> results/bench_smoke.json"
rm -f results/bench_smoke.json
cargo run --release --offline -p realtor-bench --bin bench_smoke
test -s results/bench_smoke.json || { echo "bench_smoke.json missing or empty" >&2; exit 1; }

say "quickstart determinism (two runs must be byte-identical)"
a=$(mktemp); b=$(mktemp)
trap 'rm -f "$a" "$b"' EXIT
cargo run --release --offline --example quickstart >"$a"
cargo run --release --offline --example quickstart >"$b"
if ! cmp -s "$a" "$b"; then
    echo "quickstart output differs between identical-seed runs:" >&2
    diff "$a" "$b" | head -20 >&2
    exit 1
fi

say "lossy-chaos smoke (unreliable network + attack must degrade gracefully)"
cargo run --release --offline -p experiments -- lossy --smoke true

say "failover smoke (detection + evacuation + recovery must actually survive kills)"
rm -f results/failover_summary.csv
cargo run --release --offline -p experiments -- failover --smoke true
test -s results/failover_summary.csv || { echo "failover_summary.csv missing or empty" >&2; exit 1; }

say "trace smoke (structured event log must parse and reconcile)"
rm -f results/trace_paper.jsonl
cargo run --release --offline -p experiments -- trace --scenario paper --lambda 8 --horizon 300
test -s results/trace_paper.jsonl || { echo "trace_paper.jsonl missing or empty" >&2; exit 1; }
grep -q queue_high_water results/bench_smoke.json \
    || { echo "bench_smoke.json lacks engine profile fields" >&2; exit 1; }

say "println guard (core/sim library code must use the trace layer)"
if grep -rn 'println!\|eprintln!\|dbg!' crates/core/src crates/sim/src; then
    echo "stray stdout/stderr in library code: route it through simcore::trace" >&2
    exit 1
fi

say "CI green"
