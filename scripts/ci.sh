#!/usr/bin/env bash
# Offline CI gate for the hermetic workspace.
#
# Everything here must pass on a machine with no network access and no cargo
# cache beyond the toolchain: the workspace has zero external dependencies
# by policy (enforced by tests/hermetic.rs).
#
# Steps:
#   1. release build, all targets, offline
#   2. full test suite, offline
#   3. clippy (gated: skipped with a notice if the component is absent)
#   4. bench smoke run -> results/bench_smoke.json, gated against the
#      committed results/bench_baseline.json: engine events/sec must not
#      regress >25%, the deep-queue stress must stay >= 3x the
#      BinaryHeap oracle, and the tracing-overhead gate must hold — a
#      run traced at Info severity (the live-exposition configuration)
#      must keep >= 0.70x the untraced events/sec (one retry absorbs
#      shared-runner noise)
#   5. quickstart determinism: two runs, byte-identical stdout
#   6. lossy-chaos smoke: 10% datagram loss + node strike + link jamming;
#      asserts graceful degradation, determinism, and finite recovery
#   7. failover smoke: failure detection + evacuation + crash recovery;
#      asserts detection, re-homed checkpoints, landed evacuations and
#      determinism, and emits results/failover_summary.csv
#   8. trace smoke: traced Figure-5 cell -> results/trace_paper.jsonl;
#      the subcommand itself validates every JSON line, re-proves
#      tracing-on == tracing-off, and reconciles registry vs SimResult
#   9. analyze smoke: a traced failover cell -> results/trace_failover.jsonl,
#      piped through `experiments analyze`; the causal report must show
#      a recovery critical path and zero lineage-incomplete admissions
#  10. println guard: library code in crates/core, crates/sim,
#      crates/agile, crates/runner and crates/workload must go through
#      the trace layer, never stdout/stderr
#  11. sweep smoke: the figures sweep at --jobs 1 and --jobs 2 must emit
#      byte-identical CSV artifacts (the runner's determinism contract,
#      end-to-end through the CLI), with wall-clock timings appended to
#      results/bench_smoke.json and the jobs-2 run asserted no slower
#      than serial (speedup >= 0.95, single-core jitter tolerance)
#  12. churn smoke: the A16 continuous-churn cell at --jobs 1 and --jobs 2
#      must emit byte-identical churn_summary.csv (the subcommand itself
#      asserts interruptions, recoveries and the task ledger); timings
#      appended to results/bench_smoke.json
#  13. cluster smoke: the A18 live-runtime survivability cell — a crash
#      wave mid-load on the thread-per-host cluster must be supervised
#      back to the pre-kill admission rate with the ledger identity
#      `interrupted == recovered + destroyed` intact, and the A14 JSONL
#      event log emitted; timing appended to results/bench_smoke.json.
#      The live exposition file results/cluster_metrics.prom is then
#      linted against the Prometheus text format (every sample parses,
#      every family carries # HELP and # TYPE headers)
#  14. golden-figure re-check: the pinned paper-baseline cells must be
#      bit-exact with chaos code merged (chaos off = zero new events,
#      and the tracing layer off = zero overhead and zero new events)

set -euo pipefail
cd "$(dirname "$0")/.."

say() { printf '\n==> %s\n' "$*"; }

say "build (release, all targets, offline)"
cargo build --release --workspace --all-targets --offline

say "test (offline)"
cargo test --workspace --offline --quiet

say "clippy"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "clippy not installed; skipping (install with: rustup component add clippy)"
fi

say "bench smoke -> results/bench_smoke.json (with engine gates)"
# Pull one numeric field out of the first JSON line of a group. The bench
# file is JSON-lines written by our own tools, so grep/cut is enough —
# no jq dependency (offline-CI policy).
bench_field() {
    grep "\"group\":\"$2\"" "$1" | grep -o "\"$3\":[0-9.]*" | head -1 | cut -d: -f2
}
run_bench_smoke() {
    rm -f results/bench_smoke.json
    cargo run --release --offline -p realtor-bench --bin bench_smoke
    test -s results/bench_smoke.json || { echo "bench_smoke.json missing or empty" >&2; return 1; }
}
# Engine gates against the committed baseline (results/bench_baseline.json):
#   - events/sec must not regress more than 25%
#   - the deep-queue stress must stay >= 3x the BinaryHeap oracle
#   - tracing-overhead gate (A19): the same deterministic run traced at
#     Info severity (the live-exposition configuration the cluster
#     sampler uses) must keep >= 0.70x the untraced events/sec. The
#     full-Debug ratio rides along in bench_smoke.json ungated.
check_bench_gates() {
    local eps base_eps ratio trace_ratio
    eps=$(bench_field results/bench_smoke.json smoke/profile events_per_sec)
    base_eps=$(bench_field results/bench_baseline.json smoke/profile events_per_sec)
    ratio=$(bench_field results/bench_smoke.json smoke/queue_stress speedup_vs_heap)
    trace_ratio=$(bench_field results/bench_smoke.json smoke/trace_overhead traced_over_untraced)
    awk -v eps="$eps" -v base="$base_eps" -v ratio="$ratio" -v tr="$trace_ratio" 'BEGIN {
        ok = 1
        if (eps + 0 < 0.75 * base) {
            printf "engine throughput regressed >25%%: %.0f events/s vs committed baseline %.0f\n", eps, base
            ok = 0
        }
        if (ratio + 0 < 3.0) {
            printf "deep-queue stress speedup %.2fx is below the 3x floor\n", ratio
            ok = 0
        }
        if (tr == "" || tr + 0 < 0.70) {
            printf "tracing overhead gate: Info-traced run at %.2fx untraced events/sec is below the 0.70x floor\n", tr
            ok = 0
        }
        exit ok ? 0 : 1
    }'
}
# One retry: on a shared runner a noisy neighbour can depress a whole
# measurement window. A real regression fails both attempts.
if ! { run_bench_smoke && check_bench_gates; }; then
    echo "bench gates failed; retrying once (shared-runner noise)" >&2
    run_bench_smoke
    check_bench_gates || { echo "bench gates failed twice: treat as a real regression" >&2; exit 1; }
fi

say "quickstart determinism (two runs must be byte-identical)"
a=$(mktemp); b=$(mktemp)
sweep1=$(mktemp -d); sweep2=$(mktemp -d)
churn1=$(mktemp -d); churn2=$(mktemp -d)
trap 'rm -f "$a" "$b"; rm -rf "$sweep1" "$sweep2" "$churn1" "$churn2"' EXIT
cargo run --release --offline --example quickstart >"$a"
cargo run --release --offline --example quickstart >"$b"
if ! cmp -s "$a" "$b"; then
    echo "quickstart output differs between identical-seed runs:" >&2
    diff "$a" "$b" | head -20 >&2
    exit 1
fi

say "lossy-chaos smoke (unreliable network + attack must degrade gracefully)"
cargo run --release --offline -p experiments -- lossy --smoke true

say "failover smoke (detection + evacuation + recovery must actually survive kills)"
rm -f results/failover_summary.csv
cargo run --release --offline -p experiments -- failover --smoke true
test -s results/failover_summary.csv || { echo "failover_summary.csv missing or empty" >&2; exit 1; }

say "trace smoke (structured event log must parse and reconcile)"
rm -f results/trace_paper.jsonl
cargo run --release --offline -p experiments -- trace --scenario paper --lambda 8 --horizon 300
test -s results/trace_paper.jsonl || { echo "trace_paper.jsonl missing or empty" >&2; exit 1; }
grep -q queue_high_water results/bench_smoke.json \
    || { echo "bench_smoke.json lacks engine profile fields" >&2; exit 1; }

say "analyze smoke (causal report over a traced failover cell)"
rm -f results/trace_failover.jsonl
cargo run --release --offline -p experiments -- trace --scenario failover --lambda 6 --horizon 120
test -s results/trace_failover.jsonl || { echo "trace_failover.jsonl missing or empty" >&2; exit 1; }
analysis=$(cargo run --release --offline -p experiments -- analyze --input results/trace_failover.jsonl)
echo "$analysis" | grep -q '^## Trace analysis (A19)' \
    || { echo "analyze output lacks the A19 report header" >&2; exit 1; }
echo "$analysis" | grep -q 'time-to-recovery' \
    || { echo "analyze found no recovery critical path in the failover trace" >&2; exit 1; }
# Every admitted and every recovered task in the trace must carry a
# complete lineage chain: "admitted: N (N lineage-complete)".
echo "$analysis" | awk '
    # Line shape: admitted: N (N lineage-complete), recovered: M (M lineage-complete), ...
    /^admitted:/ {
        if ($2 != substr($3, 2)) { print "incomplete admission lineage: " $0; bad = 1 }
        if ($6 != substr($7, 2)) { print "incomplete recovery lineage: " $0; bad = 1 }
        seen = 1
    }
    END { exit (seen && !bad) ? 0 : 1 }
' || { echo "analyze lineage check failed" >&2; exit 1; }
echo "analyze smoke ok: critical path present, lineage complete"

say "println guard (core/sim/agile/runner/workload library code must use the trace layer)"
if grep -rn 'println!\|eprintln!\|dbg!' \
        crates/core/src crates/sim/src crates/agile/src crates/runner/src crates/workload/src; then
    echo "stray stdout/stderr in library code: route it through simcore::trace" >&2
    exit 1
fi

say "sweep smoke (--jobs 1 and --jobs 2 must emit byte-identical artifacts)"
ns_now() { date +%s%N; }
# Five interleaved timed pairs; the per-arm minimum is the noise-robust
# wall-time estimator (contention on a shared runner only ever slows a
# run down, so the minimum is the least-contended measurement, and
# interleaving means a slow window hits both arms alike).
serial_min=0; jobs2_min=0
for rep in 1 2 3 4 5; do
    t0=$(ns_now)
    cargo run --release --offline -p experiments -- \
        figures --quick true --lambdas 2,5,8 --seed 42 --jobs 1 --out "$sweep1" >/dev/null
    t1=$(ns_now)
    cargo run --release --offline -p experiments -- \
        figures --quick true --lambdas 2,5,8 --seed 42 --jobs 2 --out "$sweep2" >/dev/null
    t2=$(ns_now)
    s=$((t1 - t0)); j=$((t2 - t1))
    if [ "$serial_min" -eq 0 ] || [ "$s" -lt "$serial_min" ]; then serial_min=$s; fi
    if [ "$jobs2_min" -eq 0 ] || [ "$j" -lt "$jobs2_min" ]; then jobs2_min=$j; fi
done
for stem in fig5_admission_probability fig6_number_of_messages \
            fig7_cost_per_admitted_task fig8_migration_rate; do
    test -s "$sweep1/$stem.csv" || { echo "$stem.csv missing from --jobs 1 run" >&2; exit 1; }
    if ! cmp -s "$sweep1/$stem.csv" "$sweep2/$stem.csv"; then
        echo "sweep artifact $stem.csv differs between --jobs 1 and --jobs 2:" >&2
        diff "$sweep1/$stem.csv" "$sweep2/$stem.csv" | head -20 >&2
        exit 1
    fi
done
awk -v serial="$serial_min" -v jobs2="$jobs2_min" 'BEGIN {
    printf "{\"group\":\"smoke/sweep\",\"name\":\"figures_quick_grid\",\"cells\":15,"
    printf "\"serial_ns\":%d,\"jobs2_ns\":%d,\"speedup_jobs2\":%.3f}\n", serial, jobs2, serial / jobs2
}' >> results/bench_smoke.json
echo "sweep smoke ok: jobs 1 vs 2 byte-identical; timings appended to results/bench_smoke.json"
# The --jobs 2 sweep must be no slower than serial (the PR-8 pool fix:
# workers clamp to real hardware, so on a single core jobs-2 takes the
# serial fast path). Tolerance 0.95 absorbs residual startup jitter on a
# shared single-core runner; a structural slowdown lands well below it.
awk -v s="$(bench_field results/bench_smoke.json smoke/sweep speedup_jobs2)" 'BEGIN {
    if (s + 0 < 0.95) {
        printf "--jobs 2 figures sweep slower than serial: speedup %.3f < 0.95\n", s
        exit 1
    }
}' || exit 1

say "churn smoke (continuous churn must interrupt, recover, and balance the ledger)"
t0=$(ns_now)
cargo run --release --offline -p experiments -- \
    churn --smoke true --seed 42 --jobs 1 --out "$churn1" >/dev/null
t1=$(ns_now)
cargo run --release --offline -p experiments -- \
    churn --smoke true --seed 42 --jobs 2 --out "$churn2" >/dev/null
t2=$(ns_now)
test -s "$churn1/churn_summary.csv" || { echo "churn_summary.csv missing from --jobs 1 run" >&2; exit 1; }
if ! cmp -s "$churn1/churn_summary.csv" "$churn2/churn_summary.csv"; then
    echo "churn_summary.csv differs between --jobs 1 and --jobs 2:" >&2
    diff "$churn1/churn_summary.csv" "$churn2/churn_summary.csv" | head -20 >&2
    exit 1
fi
awk -v serial=$((t1 - t0)) -v jobs2=$((t2 - t1)) 'BEGIN {
    printf "{\"group\":\"smoke/churn\",\"name\":\"churn_smoke_cell\",\"cells\":2,"
    printf "\"serial_ns\":%d,\"jobs2_ns\":%d,\"speedup_jobs2\":%.3f}\n", serial, jobs2, serial / jobs2
}' >> results/bench_smoke.json
echo "churn smoke ok: jobs 1 vs 2 byte-identical; timings appended to results/bench_smoke.json"

say "cluster smoke (crash wave on the live runtime must recover and balance the ledger)"
rm -f results/cluster_run.jsonl
t0=$(ns_now)
cargo run --release --offline -p experiments -- cluster --smoke true --seed 42 >/dev/null
t1=$(ns_now)
test -s results/cluster_run.jsonl || { echo "cluster_run.jsonl missing or empty" >&2; exit 1; }
awk -v wall=$((t1 - t0)) 'BEGIN {
    printf "{\"group\":\"smoke/cluster\",\"name\":\"cluster_smoke_crash_wave\",\"hosts\":5,"
    printf "\"wall_ns\":%d}\n", wall
}' >> results/bench_smoke.json
echo "cluster smoke ok: recovery + ledger asserted; timing appended to results/bench_smoke.json"

say "prometheus lint (live exposition snapshot must be valid text format)"
test -s results/cluster_metrics.prom || { echo "cluster_metrics.prom missing or empty" >&2; exit 1; }
# Offline lint of the Prometheus text exposition format: every line is a
# # HELP / # TYPE header or a sample `name{labels} value`; sample names
# are valid metric identifiers; values parse as numbers (or +/-Inf/NaN);
# and every sample's family was announced by # HELP and # TYPE first.
awk '
    /^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* / { help[$3] = 1; next }
    /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$/ { type[$3] = 1; next }
    /^#/ { print "malformed comment line " NR ": " $0; bad = 1; next }
    /^$/ { next }
    {
        if (!match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+?Inf|NaN)$/)) {
            print "malformed sample line " NR ": " $0; bad = 1; next
        }
        name = $1; sub(/\{.*/, "", name)
        # histogram/summary series carry the family name plus a suffix
        fam = name
        sub(/_(bucket|sum|count)$/, "", fam)
        if (!(name in help) && !(fam in help)) { print "sample without # HELP at line " NR ": " name; bad = 1 }
        if (!(name in type) && !(fam in type)) { print "sample without # TYPE at line " NR ": " name; bad = 1 }
        samples++
    }
    END {
        if (!samples) { print "no samples in exposition"; bad = 1 }
        exit bad ? 1 : 0
    }
' results/cluster_metrics.prom || { echo "prometheus lint failed on results/cluster_metrics.prom" >&2; exit 1; }
echo "prometheus lint ok: $(grep -c '^# TYPE' results/cluster_metrics.prom) metric families in results/cluster_metrics.prom"

say "golden-figure re-check (chaos off must leave the paper baseline bit-exact)"
cargo test --release --offline -p realtor --test golden_figures --quiet

say "invalid-input guard (unknown scenario / bad --jobs / bad attack script must exit nonzero)"
if cargo run --release --offline -p experiments -- no-such-scenario 2>/dev/null; then
    echo "unknown scenario must exit nonzero" >&2; exit 1
fi
if cargo run --release --offline -p experiments -- figures --jobs 0 2>/dev/null; then
    echo "--jobs 0 must exit nonzero" >&2; exit 1
fi
if cargo run --release --offline -p experiments -- attack --kill-fraction 99 2>/dev/null; then
    echo "an impossible attack script (kill 99x the cluster) must exit nonzero" >&2; exit 1
fi

say "CI green"
