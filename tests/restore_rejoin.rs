//! Property test: survivability actually survives. A node killed mid-run
//! and restored later comes back with amnesia — fresh queue, fresh protocol
//! state, empty membership table — and must *re-earn* its place: within the
//! post-restore overload it re-joins communities through ordinary HELP
//! traffic. And the whole failover pipeline (detector sweeps, declarations,
//! checkpoint recovery) stays bit-for-bit deterministic under replay.

use realtor_core::protocol::Introspection;
use realtor_core::{FailureDetectorConfig, ProtocolConfig, ProtocolKind};
use realtor_net::TargetingStrategy;
use realtor_sim::{RecoveryConfig, Scenario, SimResult, World};
use realtor_simcore::prelude::*;
use realtor_simcore::{prop_assert, prop_assert_eq};
use realtor_workload::{AttackAction, AttackEvent, AttackScenario};

/// Kill exactly `victim` at t=100, restore at t=200, horizon 300 s, with
/// the failure detector and reactive recovery on. Returns the final
/// metrics plus the victim's end-of-run protocol introspection.
fn run_once(victim: usize, lambda: f64, seed: u64) -> (SimResult, Introspection) {
    let detector = FailureDetectorConfig {
        suspect_after: SimDuration::from_secs(4),
        confirm_after: SimDuration::from_secs(2),
        sweep_interval: SimDuration::from_secs(1),
    };
    let attack = AttackScenario::new(vec![
        AttackEvent {
            at: SimTime::from_secs(100),
            action: AttackAction::Kill { count: 1 },
        },
        AttackEvent {
            at: SimTime::from_secs(200),
            action: AttackAction::RestoreAll,
        },
    ]);
    let scenario = Scenario::paper(ProtocolKind::Realtor, lambda, 300, seed)
        .with_protocol_config(ProtocolConfig::paper().with_failure_detector(detector))
        .with_attack(attack, TargetingStrategy::Explicit(vec![victim]))
        .with_recovery(RecoveryConfig::reactive());
    let mut world = World::new(&scenario);
    let mut engine = Engine::new();
    world.prime(&mut engine);
    engine.run_until(&mut world, scenario.horizon());
    let intro = world.introspect_node(victim, engine.now());
    let result = world.finish(&engine);
    (result, intro)
}

#[test]
fn killed_then_restored_node_rejoins_communities() {
    forall(
        "killed_then_restored_node_rejoins_communities",
        0x514D0B,
        12,
        |r| {
            (
                gen::usize_in(r, 0, 24),
                gen::f64_in(r, 5.5, 8.5),
                gen::u64_in(r, 0, 10_000),
            )
        },
        |&(victim, lambda, seed)| {
            // The shrinker halves values toward zero without knowing the
            // generator ranges; out-of-range shrinks are vacuously true.
            if victim >= 25 || !(5.5..8.5).contains(&lambda) {
                return Ok(());
            }
            let (a, intro) = run_once(victim, lambda, seed);

            // `on_reset` wiped the victim's membership table at restore, so
            // any lifetime join it reports was earned *after* coming back:
            // the restored node heard an organizer's HELP and re-joined.
            prop_assert!(
                intro.lifetime_joins >= 1,
                "victim {victim} (lambda {lambda}, seed {seed}) never re-joined \
                 a community in 100 s of post-restore overload"
            );

            // The recovery ledger balances whatever backlog the kill caught
            // (a well-balanced victim may legitimately be idle at t=100).
            prop_assert_eq!(a.tasks_interrupted, a.tasks_recovered + a.tasks_destroyed);

            // Replay at the same seed: identical metrics, identical
            // protocol state on the victim — detector and recovery
            // included.
            let (b, intro_b) = run_once(victim, lambda, seed);
            prop_assert!(a == b, "failover replay diverged at seed {seed}");
            prop_assert_eq!(intro, intro_b);
            Ok(())
        },
    );
}
