//! Survivability on the real (threaded) Agile Objects runtime: hosts come
//! under attack mid-run, survivors keep admitting, revived hosts rejoin.

use realtor::agile::{Cluster, ClusterConfig};
use realtor::simcore::SimTime;
use realtor::workload::WorkloadSpec;

fn cfg(hosts: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        hosts,
        time_scale: 2_000.0,
        seed: 17,
        ..Default::default()
    };
    cfg.host.capacity_secs = 50.0;
    cfg
}

#[test]
fn killed_hosts_lose_their_arrivals_but_survivors_admit() {
    let mut cfg = cfg(6);
    // Light load so survivors always have space: at lambda 1.0 the four
    // survivors each see ~110 s of arriving work against 120 s of drain,
    // so a 50 s queue leaves only a few sim-seconds of slack — thin
    // enough for wall-clock jitter (scaled 2000x) to flip an admission.
    // Double the queue so "always have space" holds with real margin.
    cfg.host.capacity_secs = 100.0;
    let cluster = Cluster::start(&cfg);
    let trace = WorkloadSpec::paper(1.0, 6, SimTime::from_secs(120), 17).generate();
    // Kill hosts 0 and 1 up front.
    cluster.kill_host(0);
    cluster.kill_host(1);
    cluster.settle(1.0);
    cluster.run_workload(&trace);
    cluster.settle(3.0);
    let report = cluster.shutdown();
    assert_eq!(report.offered, trace.len() as u64);
    assert!(report.lost_to_attacks > 0, "dead hosts saw no arrivals?");
    // Every loss is an arrival addressed to a dead host; everything else
    // was admitted (load is far below survivor capacity).
    assert_eq!(
        report.admitted() + report.lost_to_attacks,
        report.offered,
        "survivors must admit all their arrivals: {report:?}"
    );
}

#[test]
fn revived_hosts_rejoin_and_admit_again() {
    let cluster = Cluster::start(&cfg(4));
    cluster.kill_host(2);
    cluster.settle(1.0);
    // While host 2 is down, its submissions are lost.
    for _ in 0..5 {
        cluster.submit(2, 1.0);
    }
    cluster.settle(2.0);
    cluster.revive_host(2);
    cluster.settle(2.0);
    // After revival, submissions are admitted again.
    for _ in 0..5 {
        cluster.submit(2, 1.0);
    }
    cluster.settle(5.0);
    let report = cluster.shutdown();
    assert_eq!(report.offered, 10);
    assert_eq!(report.lost_to_attacks, 5);
    assert_eq!(report.admitted(), 5, "revived host must admit");
}

#[test]
fn dead_hosts_refuse_migrations() {
    // 2 hosts; host 1 dead; host 0 overloaded: one-shot migrations to the
    // dead host must fail (rejected), never hang.
    let cluster = Cluster::start(&cfg(2));
    cluster.kill_host(1);
    cluster.settle(1.0);
    // Overfill host 0 (capacity 50): 20 x 5s = 100s of work.
    for _ in 0..20 {
        cluster.submit(0, 5.0);
    }
    cluster.settle(5.0);
    let report = cluster.shutdown();
    assert_eq!(report.offered, 20);
    assert!(report.rejected > 0, "overflow must be rejected, not admitted");
    assert_eq!(report.admitted_migrated, 0, "nothing can migrate to a dead host");
}
