//! Integration tests asserting the paper's headline claims hold in this
//! reproduction (shape claims, not absolute numbers — see EXPERIMENTS.md).

use realtor::core::ProtocolKind;
use realtor::net::Topology;
use realtor::sim::{run_scenario, run_sweep, Scenario};

const HORIZON: u64 = 2_000;
const SEED: u64 = 42;

/// Claim 1 (effectiveness): under both normal and heavy load, REALTOR's
/// admission probability is within a whisker of the best protocol.
#[test]
fn realtor_admission_is_top_tier() {
    for lambda in [3.0, 6.0, 9.0] {
        let sweep = run_sweep(&ProtocolKind::ALL, &[lambda], |p, l| {
            Scenario::paper(p, l, HORIZON, SEED)
        });
        let best = ProtocolKind::ALL
            .iter()
            .map(|&p| sweep.get(p, lambda).unwrap().admission_probability())
            .fold(0.0f64, f64::max);
        let realtor = sweep
            .get(ProtocolKind::Realtor, lambda)
            .unwrap()
            .admission_probability();
        assert!(
            realtor >= best - 0.02,
            "lambda={lambda}: REALTOR {realtor:.4} vs best {best:.4}"
        );
    }
}

/// Claim 2 (overhead): REALTOR's total message cost is a small fraction of
/// pure push at every load, and pure pull's cost grows with load while pure
/// push's does not.
#[test]
fn realtor_overhead_beats_pure_push() {
    let lambdas = [2.0, 6.0, 10.0];
    let sweep = run_sweep(&ProtocolKind::ALL, &lambdas, |p, l| {
        Scenario::paper(p, l, HORIZON, SEED)
    });
    for &lambda in &lambdas {
        let push = sweep
            .get(ProtocolKind::PurePush, lambda)
            .unwrap()
            .total_messages();
        let realtor = sweep
            .get(ProtocolKind::Realtor, lambda)
            .unwrap()
            .total_messages();
        assert!(
            realtor < push / 2.0,
            "lambda={lambda}: REALTOR {realtor} not well below Push-1 {push}"
        );
    }
    // Pure push: flat in load. Pure pull: grows with load.
    let push_light = sweep.get(ProtocolKind::PurePush, 2.0).unwrap().ledger.push;
    let push_heavy = sweep.get(ProtocolKind::PurePush, 10.0).unwrap().ledger.push;
    assert!((push_light - push_heavy).abs() / push_light < 0.01);
    let pull_light = sweep
        .get(ProtocolKind::PurePull, 2.0)
        .unwrap()
        .total_messages();
    let pull_heavy = sweep
        .get(ProtocolKind::PurePull, 10.0)
        .unwrap()
        .total_messages();
    assert!(pull_heavy > pull_light * 10.0, "pull cost must grow with load");
}

/// Claim 3 (size independence): REALTOR's per-node overhead per admitted
/// task stays roughly flat as the system grows (constant per-node load),
/// while pure push's grows.
#[test]
fn realtor_overhead_is_size_independent() {
    let per_node = |kind: ProtocolKind, side: usize| {
        let n = side * side;
        let scenario = Scenario::paper(kind, 0.28 * n as f64, 800, SEED)
            .with_topology(Topology::mesh(side, side));
        let r = run_scenario(&scenario);
        assert!(r.admitted() > 0);
        r.total_messages() / n as f64 / r.admitted() as f64
    };
    let realtor_small = per_node(ProtocolKind::Realtor, 4);
    let realtor_large = per_node(ProtocolKind::Realtor, 12);
    assert!(
        realtor_large < realtor_small * 2.0,
        "REALTOR per-node overhead grew {realtor_small:.3} -> {realtor_large:.3}"
    );
    let push_small = per_node(ProtocolKind::PurePush, 4);
    let push_large = per_node(ProtocolKind::PurePush, 12);
    assert!(
        push_large > push_small * 1.2,
        "Push-1 per-node overhead should grow with size: {push_small:.3} -> {push_large:.3}"
    );
}

/// Claim 4 (survivability): killing a third of the nodes degrades admission
/// during the outage only by roughly the lost arrivals; after recovery the
/// system returns to its pre-attack admission level.
#[test]
fn realtor_survives_attack_and_recovers() {
    use realtor::net::TargetingStrategy;
    use realtor::simcore::{SimDuration, SimTime};
    use realtor::workload::AttackScenario;
    let scenario = Scenario::paper(ProtocolKind::Realtor, 4.0, 3_000, 7)
        .with_attack(
            AttackScenario::strike_and_recover(
                SimTime::from_secs(1_000),
                SimTime::from_secs(2_000),
                8,
            ),
            TargetingStrategy::Random,
        )
        .with_window(SimDuration::from_secs(250));
    let r = run_scenario(&scenario);
    let phase_admission = |lo: f64, hi: f64| {
        let (mut off, mut adm) = (0u64, 0u64);
        for w in &r.windows {
            let t = w.start.as_secs_f64();
            if t >= lo && t < hi {
                off += w.offered;
                adm += w.admitted;
            }
        }
        adm as f64 / off as f64
    };
    let before = phase_admission(0.0, 1_000.0);
    let during = phase_admission(1_000.0, 2_000.0);
    let after = phase_admission(2_250.0, 3_000.0); // skip one settling window
    assert!(before > 0.99, "before {before}");
    // 8/25 of arrivals go to dead nodes and are lost; survivors absorb the rest.
    assert!(during > 0.6 && during < 0.8, "during {during}");
    assert!(after > 0.98, "after {after} — system must recover");
}

/// The five protocols face the byte-identical workload (paired comparison).
#[test]
fn sweep_is_paired() {
    let sweep = run_sweep(&ProtocolKind::ALL, &[5.0], |p, l| {
        Scenario::paper(p, l, 500, 3)
    });
    let offered: Vec<u64> = ProtocolKind::ALL
        .iter()
        .map(|&p| sweep.get(p, 5.0).unwrap().offered)
        .collect();
    assert!(
        offered.windows(2).all(|w| w[0] == w[1]),
        "offered counts differ: {offered:?}"
    );
}
