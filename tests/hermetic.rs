//! Guard test for the hermetic-build policy: the workspace depends on
//! NOTHING outside the repository. It parses every manifest (and the
//! lockfile) rather than trusting documentation, so a registry dependency
//! sneaking into any crate fails the build here with a pointed message.

use std::fs;
use std::path::{Path, PathBuf};

/// Crate-name prefix every in-tree dependency must carry.
const IN_TREE_PREFIX: &str = "realtor-";

/// Workspace package names allowed to appear in Cargo.lock.
const WORKSPACE_PACKAGES: &[&str] = &[
    "realtor",
    "experiments",
    "realtor-agile",
    "realtor-bench",
    "realtor-core",
    "realtor-net",
    "realtor-node",
    "realtor-runner",
    "realtor-sim",
    "realtor-simcore",
    "realtor-workload",
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn manifests() -> Vec<PathBuf> {
    let root = repo_root();
    let mut out = vec![root.join("Cargo.toml")];
    for entry in fs::read_dir(root.join("crates")).expect("read crates/") {
        let dir = entry.expect("dir entry").path();
        let m = dir.join("Cargo.toml");
        if m.is_file() {
            out.push(m);
        }
    }
    out
}

/// Dependency names declared in any `[dependencies]`-like section of a
/// manifest, with the section they came from.
fn declared_deps(manifest: &Path) -> Vec<(String, String)> {
    let text = fs::read_to_string(manifest).expect("read manifest");
    let mut section = String::new();
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        let in_dep_section = section == "dependencies"
            || section == "dev-dependencies"
            || section == "build-dependencies"
            || section == "workspace.dependencies"
            || (section.starts_with("target.") && section.ends_with("dependencies"));
        if !in_dep_section {
            continue;
        }
        if let Some((name, _)) = line.split_once('=') {
            out.push((name.trim().trim_matches('"').to_string(), section.clone()));
        }
    }
    out
}

#[test]
fn every_declared_dependency_is_in_tree() {
    for manifest in manifests() {
        for (dep, section) in declared_deps(&manifest) {
            assert!(
                dep.starts_with(IN_TREE_PREFIX),
                "{} declares external dependency `{dep}` in [{section}] — \
                 the workspace is hermetic; vendor the functionality in-tree instead",
                manifest.display()
            );
        }
    }
}

#[test]
fn no_patch_or_registry_sections() {
    for manifest in manifests() {
        let text = fs::read_to_string(&manifest).expect("read manifest");
        for line in text.lines() {
            let line = line.trim();
            assert!(
                !line.starts_with("[patch") && !line.starts_with("[registries"),
                "{} contains `{line}` — external sources are not allowed",
                manifest.display()
            );
        }
    }
}

#[test]
fn lockfile_contains_only_workspace_packages() {
    let lock = fs::read_to_string(repo_root().join("Cargo.lock"))
        .expect("Cargo.lock must be committed for reproducible offline builds");
    let mut packages = Vec::new();
    for line in lock.lines() {
        if let Some(name) = line.strip_prefix("name = ") {
            packages.push(name.trim_matches('"').to_string());
        }
        // Workspace path dependencies carry no `source`; any source line
        // means a registry or git package entered the graph.
        assert!(
            !line.starts_with("source = "),
            "Cargo.lock records an external source: {line}"
        );
        assert!(
            !line.starts_with("checksum = "),
            "Cargo.lock records a registry checksum: {line}"
        );
    }
    assert!(!packages.is_empty(), "Cargo.lock lists no packages");
    for p in &packages {
        assert!(
            WORKSPACE_PACKAGES.contains(&p.as_str()),
            "Cargo.lock lists non-workspace package `{p}`"
        );
    }
}

#[test]
fn workspace_builds_with_vendored_code_only() {
    // Spot-check the public seams the de-externalization introduced: the
    // in-tree PRNG, property harness, codec and bench runner are reachable
    // from the root crate's dependency graph.
    use realtor::simcore::check::{forall, gen};
    use realtor::simcore::SimRng;

    let mut a = SimRng::stream(7, "hermetic");
    let mut b = SimRng::stream(7, "hermetic");
    assert_eq!(a.u64(), b.u64(), "in-tree PRNG must be deterministic");
    forall("hermetic_smoke", 1, 16, |r| gen::u64_in(r, 0, 10), |&x| {
        if x < 10 {
            Ok(())
        } else {
            Err(format!("{x} out of range"))
        }
    });
}
