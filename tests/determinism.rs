//! Workspace-level determinism and reproducibility guarantees.

use realtor::core::ProtocolKind;
use realtor::sim::{run_scenario, Scenario};
use realtor::workload::{Trace, WorkloadSpec};
use realtor::simcore::SimTime;

/// Identical scenario (seed included) ⇒ bit-identical results, for every
/// protocol, including message ledgers and migration counts.
#[test]
fn full_run_determinism() {
    for kind in ProtocolKind::ALL {
        let s = || Scenario::paper(kind, 7.0, 800, 1234);
        let a = run_scenario(&s());
        let b = run_scenario(&s());
        assert_eq!(a.offered, b.offered, "{kind}");
        assert_eq!(a.admitted_local, b.admitted_local, "{kind}");
        assert_eq!(a.admitted_migrated, b.admitted_migrated, "{kind}");
        assert_eq!(a.rejected, b.rejected, "{kind}");
        assert_eq!(a.migration_attempts, b.migration_attempts, "{kind}");
        assert_eq!(a.ledger, b.ledger, "{kind}");
        assert_eq!(a.events_processed, b.events_processed, "{kind}");
    }
}

/// The unreliable channel and attack machinery keep full determinism: a
/// lossy, jittery, duplicating channel plus a mid-run strike produces a
/// byte-identical `SimResult` (every field, via `PartialEq`) when re-run at
/// the same seed, and a different result at a different seed.
#[test]
fn lossy_attacked_run_is_deterministic() {
    use realtor::net::{LinkQuality, TargetingStrategy};
    use realtor::simcore::SimDuration;
    use realtor::workload::AttackScenario;

    let scenario = |seed: u64| {
        Scenario::paper(ProtocolKind::Realtor, 6.0, 600, seed)
            .with_channel(LinkQuality {
                loss: 0.1,
                extra_latency: SimDuration::from_millis(5),
                jitter: SimDuration::from_millis(10),
                duplication: 0.05,
            })
            .with_attack(
                AttackScenario::strike_and_recover(
                    SimTime::from_secs(200),
                    SimTime::from_secs(400),
                    8,
                ),
                TargetingStrategy::Random,
            )
            .with_window(SimDuration::from_secs(30))
    };
    let a = run_scenario(&scenario(9));
    let b = run_scenario(&scenario(9));
    assert!(a == b, "same seed must reproduce the full SimResult");
    assert!(a.ledger.lost_count > 0, "the channel must actually drop");
    assert!(a.ledger.duplicated_count > 0, "and duplicate");

    let c = run_scenario(&scenario(10));
    assert!(a != c, "a different seed must produce a different run");
}

/// Different seeds give different (but statistically similar) runs.
#[test]
fn seeds_matter_but_only_statistically() {
    let a = run_scenario(&Scenario::paper(ProtocolKind::Realtor, 6.0, 2_000, 1));
    let b = run_scenario(&Scenario::paper(ProtocolKind::Realtor, 6.0, 2_000, 2));
    assert_ne!(a.offered, b.offered, "different seeds must differ");
    assert!(
        (a.admission_probability() - b.admission_probability()).abs() < 0.05,
        "seeds {:.4} vs {:.4} diverge more than statistics allow",
        a.admission_probability(),
        b.admission_probability()
    );
}

/// A trace written to text and re-read drives an identical simulation
/// outcome (record/replay fidelity at the sub-microsecond rounding of the
/// text format is enough not to change any admission decision).
#[test]
fn trace_text_round_trip_preserves_results() {
    let spec = WorkloadSpec::paper(5.0, 25, SimTime::from_secs(300), 77);
    let trace = spec.generate();
    let parsed = Trace::from_text(&trace.to_text()).unwrap();
    assert_eq!(trace.len(), parsed.len());
    // Task-for-task the parsed trace matches to text precision.
    for (a, b) in trace.records.iter().zip(parsed.records.iter()) {
        assert_eq!(a.node, b.node);
        assert!((a.size_secs - b.size_secs).abs() < 1e-6);
    }
}

/// The engine's event count scales with, and only with, activity: an empty
/// workload processes nothing.
#[test]
fn empty_workload_is_silent() {
    let mut scenario = Scenario::paper(ProtocolKind::Realtor, 1.0, 100, 5);
    scenario.workload.horizon = SimTime::ZERO; // no arrivals generated
    let r = run_scenario(&scenario);
    assert_eq!(r.offered, 0);
    assert_eq!(r.total_messages(), 0.0);
}
