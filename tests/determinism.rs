//! Workspace-level determinism and reproducibility guarantees.

use realtor::core::ProtocolKind;
use realtor::sim::{run_scenario, Scenario};
use realtor::workload::{Trace, WorkloadSpec};
use realtor::simcore::SimTime;

/// Identical scenario (seed included) ⇒ bit-identical results, for every
/// protocol, including message ledgers and migration counts.
#[test]
fn full_run_determinism() {
    for kind in ProtocolKind::ALL {
        let s = || Scenario::paper(kind, 7.0, 800, 1234);
        let a = run_scenario(&s());
        let b = run_scenario(&s());
        assert_eq!(a.offered, b.offered, "{kind}");
        assert_eq!(a.admitted_local, b.admitted_local, "{kind}");
        assert_eq!(a.admitted_migrated, b.admitted_migrated, "{kind}");
        assert_eq!(a.rejected, b.rejected, "{kind}");
        assert_eq!(a.migration_attempts, b.migration_attempts, "{kind}");
        assert_eq!(a.ledger, b.ledger, "{kind}");
        assert_eq!(a.events_processed, b.events_processed, "{kind}");
    }
}

/// Different seeds give different (but statistically similar) runs.
#[test]
fn seeds_matter_but_only_statistically() {
    let a = run_scenario(&Scenario::paper(ProtocolKind::Realtor, 6.0, 2_000, 1));
    let b = run_scenario(&Scenario::paper(ProtocolKind::Realtor, 6.0, 2_000, 2));
    assert_ne!(a.offered, b.offered, "different seeds must differ");
    assert!(
        (a.admission_probability() - b.admission_probability()).abs() < 0.05,
        "seeds {:.4} vs {:.4} diverge more than statistics allow",
        a.admission_probability(),
        b.admission_probability()
    );
}

/// A trace written to text and re-read drives an identical simulation
/// outcome (record/replay fidelity at the sub-microsecond rounding of the
/// text format is enough not to change any admission decision).
#[test]
fn trace_text_round_trip_preserves_results() {
    let spec = WorkloadSpec::paper(5.0, 25, SimTime::from_secs(300), 77);
    let trace = spec.generate();
    let parsed = Trace::from_text(&trace.to_text()).unwrap();
    assert_eq!(trace.len(), parsed.len());
    // Task-for-task the parsed trace matches to text precision.
    for (a, b) in trace.records.iter().zip(parsed.records.iter()) {
        assert_eq!(a.node, b.node);
        assert!((a.size_secs - b.size_secs).abs() < 1e-6);
    }
}

/// The engine's event count scales with, and only with, activity: an empty
/// workload processes nothing.
#[test]
fn empty_workload_is_silent() {
    let mut scenario = Scenario::paper(ProtocolKind::Realtor, 1.0, 100, 5);
    scenario.workload.horizon = SimTime::ZERO; // no arrivals generated
    let r = run_scenario(&scenario);
    assert_eq!(r.offered, 0);
    assert_eq!(r.total_messages(), 0.0);
}
