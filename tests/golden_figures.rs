//! Golden Figure-5/6 values pinned bit-for-bit.
//!
//! These numbers were captured from the simulator *before* the unreliable-
//! channel delivery path landed, at `Scenario::paper(kind, λ, 1000s, seed 42)`.
//! The channel refactor's safety property is that the default (ideal)
//! channel reproduces them exactly: the delivery rewrite must not perturb a
//! single RNG draw, event ordering, or f64 operation. Any diff here is a
//! behavior change to the paper reproduction and needs an explicit
//! re-capture with justification in the commit message.
//!
//! `events_processed` is deliberately not pinned: stale negotiation
//! timeouts and per-recipient delivery events legitimately change the event
//! count without changing any published metric.

use realtor::core::ProtocolKind;
use realtor::sim::{run_scenario, Scenario};

struct Golden {
    kind: ProtocolKind,
    lambda: f64,
    offered: u64,
    admitted: u64,
    adm_p_bits: u64,
    total_msgs_bits: u64,
    help: u64,
    pledge: u64,
    push: u64,
    migr: u64,
    migr_ok: u64,
}

macro_rules! golden {
    ($kind:ident, $lambda:expr, $offered:expr, $admitted:expr, $adm:expr, $msgs:expr,
     $help:expr, $pledge:expr, $push:expr, $migr:expr, $migr_ok:expr) => {
        Golden {
            kind: ProtocolKind::$kind,
            lambda: $lambda,
            offered: $offered,
            admitted: $admitted,
            adm_p_bits: $adm,
            total_msgs_bits: $msgs,
            help: $help,
            pledge: $pledge,
            push: $push,
            migr: $migr,
            migr_ok: $migr_ok,
        }
    };
}

#[rustfmt::skip]
const GOLDEN: &[Golden] = &[
    golden!(PurePull,     2.0, 2032, 2032, 0x3ff0000000000000, 0x0000000000000000,    0,     0,     0,    0,   0),
    golden!(PurePull,     5.0, 4997, 4989, 0x3feff2e28ad5d64c, 0x40ed660000000000,  456, 10284,     0,  104, 102),
    golden!(PurePull,     8.0, 8063, 7033, 0x3febe98561b1d4e2, 0x411ce7b000000000, 5915, 56151,     0, 1547, 685),
    golden!(PurePush,     2.0, 2032, 2032, 0x3ff0000000000000, 0x412e8c5000000000,    0,     0, 25025,    0,   0),
    golden!(PurePush,     5.0, 4997, 4997, 0x3ff0000000000000, 0x412e937000000000,    0,     0, 25025,  114, 114),
    golden!(PurePush,     8.0, 8063, 7074, 0x3fec132d4ea5094e, 0x412ee8e000000000,    0,     0, 25025, 1481, 977),
    golden!(AdaptivePush, 2.0, 2032, 2032, 0x3ff0000000000000, 0x0000000000000000,    0,     0,     0,    0,   0),
    golden!(AdaptivePush, 5.0, 4997, 4948, 0x3fefafab925dc094, 0x40d5fc0000000000,    0,     0,   544,   94,  94),
    golden!(AdaptivePush, 8.0, 8063, 7166, 0x3fec70a61da78b6a, 0x4102cec000000000,    0,     0,  3640, 1059, 1034),
    golden!(AdaptivePull, 2.0, 2032, 2032, 0x3ff0000000000000, 0x0000000000000000,    0,     0,     0,    0,   0),
    golden!(AdaptivePull, 5.0, 4997, 4989, 0x3feff2e28ad5d64c, 0x40dbdb0000000000,  211,  4803,     0,  109, 107),
    golden!(AdaptivePull, 8.0, 8063, 7046, 0x3febf6baa0565c23, 0x40efac0000000000,  636,  6884,     0, 1486, 776),
    golden!(Realtor,      2.0, 2032, 2032, 0x3ff0000000000000, 0x0000000000000000,    0,     0,     0,    0,   0),
    golden!(Realtor,      5.0, 4997, 4991, 0x3feff629e82060b9, 0x40dfc10000000000,  215,  5759,     0,  110, 109),
    golden!(Realtor,      8.0, 8063, 7083, 0x3fec1c522b3e5340, 0x40fce04000000000,  562, 21723,     0, 1113, 774),
];

#[test]
fn ideal_channel_reproduces_pre_channel_golden_values() {
    for g in GOLDEN {
        let r = run_scenario(&Scenario::paper(g.kind, g.lambda, 1000, 42));
        let tag = format!("({:?}, λ={})", g.kind, g.lambda);
        assert_eq!(r.offered, g.offered, "{tag} offered");
        assert_eq!(r.admitted(), g.admitted, "{tag} admitted");
        assert_eq!(
            r.admission_probability().to_bits(),
            g.adm_p_bits,
            "{tag} admission probability drifted: {:.17} (bits {:#018x})",
            r.admission_probability(),
            r.admission_probability().to_bits()
        );
        assert_eq!(
            r.total_messages().to_bits(),
            g.total_msgs_bits,
            "{tag} total message cost drifted: {:.3} (bits {:#018x})",
            r.total_messages(),
            r.total_messages().to_bits()
        );
        assert_eq!(r.ledger.help_count, g.help, "{tag} help count");
        assert_eq!(r.ledger.pledge_count, g.pledge, "{tag} pledge count");
        assert_eq!(r.ledger.push_count, g.push, "{tag} push count");
        assert_eq!(r.ledger.migration_count, g.migr, "{tag} migration count");
        assert_eq!(r.migration_successes, g.migr_ok, "{tag} migration successes");
        // An ideal channel loses and duplicates nothing, by construction.
        assert_eq!(r.ledger.lost_count, 0, "{tag} lost");
        assert_eq!(r.ledger.duplicated_count, 0, "{tag} duplicated");
    }
}
