//! Property: an *explicitly configured* all-zero channel is equivalent to
//! the ideal channel.
//!
//! The ideal channel short-circuits before sampling; an all-zero
//! `LinkQuality` goes through the sampling path but must consume no
//! randomness and introduce no delay (zero-probability Bernoulli draws are
//! skipped, zero jitter spans are never drawn). If either property breaks,
//! the two paths diverge. We compare every `SimResult` field except
//! `events_processed` (the per-recipient delivery path legitimately
//! processes more events than the grouped ideal fast path).

use realtor::core::ProtocolKind;
use realtor::net::{ChannelModel, LinkQuality, TargetingStrategy};
use realtor::sim::{run_scenario, Scenario, SimResult};
use realtor::simcore::prelude::*;
use realtor::simcore::{prop_assert, prop_assert_eq, SimDuration, SimTime};
use realtor::workload::AttackScenario;

fn arb_protocol(rng: &mut SimRng) -> ProtocolKind {
    gen::one_of(
        rng,
        &[
            ProtocolKind::PurePull,
            ProtocolKind::PurePush,
            ProtocolKind::AdaptivePush,
            ProtocolKind::AdaptivePull,
            ProtocolKind::Realtor,
        ],
    )
}

fn assert_equivalent(a: &SimResult, b: &SimResult) -> Result<(), String> {
    prop_assert_eq!(a.offered, b.offered);
    prop_assert_eq!(a.admitted_local, b.admitted_local);
    prop_assert_eq!(a.admitted_migrated, b.admitted_migrated);
    prop_assert_eq!(a.rejected, b.rejected);
    prop_assert_eq!(a.lost_to_attacks, b.lost_to_attacks);
    prop_assert_eq!(a.migration_attempts, b.migration_attempts);
    prop_assert_eq!(a.migration_successes, b.migration_successes);
    prop_assert_eq!(a.ledger, b.ledger);
    prop_assert!(a.windows == b.windows, "window series diverged");
    prop_assert!(a.node_stats == b.node_stats, "node stats diverged");
    prop_assert!(
        a.interval_series == b.interval_series,
        "interval series diverged"
    );
    Ok(())
}

/// Zero-loss, zero-latency channel ≡ instant (ideal) delivery, across
/// protocols, loads, seeds, and mid-run attacks.
#[test]
fn all_zero_channel_is_instant_delivery() {
    forall(
        "all_zero_channel_is_instant_delivery",
        0x514D0C,
        20,
        |r| {
            (
                arb_protocol(r),
                gen::f64_in(r, 1.0, 10.0),
                gen::u64_in(r, 0, 10_000),
                gen::u64_in(r, 0, 1) == 1,
            )
        },
        |&(protocol, lambda, seed, attacked)| {
            let base = || {
                let s = Scenario::paper(protocol, lambda, 250, seed)
                    .with_window(SimDuration::from_secs(25));
                if attacked {
                    s.with_attack(
                        AttackScenario::strike_and_recover(
                            SimTime::from_secs(80),
                            SimTime::from_secs(160),
                            6,
                        ),
                        TargetingStrategy::Random,
                    )
                } else {
                    s
                }
            };
            let ideal = run_scenario(&base().with_channel_model(ChannelModel::ideal()));
            // An explicit all-zero uniform quality is recognized as ideal
            // (this guards the `is_ideal` definition itself).
            let zero = LinkQuality {
                loss: 0.0,
                extra_latency: SimDuration::ZERO,
                jitter: SimDuration::ZERO,
                duplication: 0.0,
            };
            let explicit = run_scenario(&base().with_channel(zero));
            assert_equivalent(&ideal, &explicit)?;
            // Degrading a link with a zero-impairment degraded quality
            // forces the full sampling path (per-recipient flood delivery,
            // effective-quality composition, channel RNG in the loop) while
            // impairing nothing — the strong form of the equivalence: the
            // sampling machinery with all-zero parameters must consume no
            // randomness and shift no timestamps.
            let mut sampled_but_zero = ChannelModel::uniform(zero).with_degraded_quality(zero);
            sampled_but_zero.degrade_link(0, 1);
            assert!(!sampled_but_zero.is_ideal());
            let forced = run_scenario(&base().with_channel_model(sampled_but_zero));
            assert_equivalent(&ideal, &forced)
        },
    );
}
