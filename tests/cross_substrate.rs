//! The same protocol code runs under two substrates: the deterministic
//! discrete-event simulator and the thread-per-host Agile Objects cluster.
//! These tests check the two substrates agree on protocol behaviour.

use realtor::agile::{Cluster, ClusterConfig};
use realtor::core::ProtocolKind;
use realtor::sim::{run_scenario, Scenario};
use realtor::simcore::SimTime;
use realtor::workload::WorkloadSpec;

/// Run the cluster with the sim's parameters and compare admission
/// probability. The cluster is nondeterministic (real threads), so the
/// comparison uses a generous tolerance.
fn cluster_admission(lambda: f64, hosts: usize, capacity: f64, horizon: u64) -> f64 {
    let mut cfg = ClusterConfig {
        hosts,
        time_scale: 2_000.0,
        seed: 42,
        ..Default::default()
    };
    cfg.host.capacity_secs = capacity;
    let cluster = Cluster::start(&cfg);
    let trace = WorkloadSpec::paper(lambda, hosts, SimTime::from_secs(horizon), 42).generate();
    cluster.run_workload(&trace);
    cluster.settle(3.0);
    cluster.shutdown().admission_probability()
}

fn sim_admission(lambda: f64, capacity: f64, horizon: u64) -> f64 {
    let scenario = Scenario::paper(ProtocolKind::Realtor, lambda, horizon, 42)
        .with_capacity(capacity);
    run_scenario(&scenario).admission_probability()
}

#[test]
fn sim_and_cluster_agree_at_light_load() {
    let cluster = cluster_admission(1.0, 25, 100.0, 120);
    let sim = sim_admission(1.0, 100.0, 120);
    assert!(cluster > 0.99, "cluster {cluster}");
    assert!(sim > 0.99, "sim {sim}");
}

#[test]
fn sim_and_cluster_agree_under_overload() {
    // 25 hosts x 1 work-s/s against lambda 10 x 5 s of work: heavy overload.
    // Both substrates must land in the same admission band.
    let cluster = cluster_admission(10.0, 25, 100.0, 400);
    let sim = sim_admission(10.0, 100.0, 400);
    assert!(
        (cluster - sim).abs() < 0.12,
        "substrates disagree: cluster {cluster:.3} vs sim {sim:.3}"
    );
}

#[test]
fn cluster_naming_service_is_clean_after_settling() {
    // After the workload drains completely, every component has expired and
    // the naming service must be empty (no leaked registrations).
    let mut cfg = ClusterConfig {
        hosts: 4,
        time_scale: 2_000.0,
        seed: 5,
        ..Default::default()
    };
    cfg.host.capacity_secs = 50.0;
    let cluster = Cluster::start(&cfg);
    let trace = WorkloadSpec::paper(1.0, 4, SimTime::from_secs(30), 5).generate();
    cluster.run_workload(&trace);
    // Longest possible backlog is the queue capacity; settle past it.
    cluster.settle(60.0);
    // Poke the hosts so their loops run the expiry sweep after settling.
    for _ in 0..4 {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let report = cluster.shutdown();
    assert_eq!(report.rejected, 0);
    assert_eq!(
        report.live_components, 0,
        "naming service leaked {} bindings",
        report.live_components
    );
}
